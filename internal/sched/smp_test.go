package sched

import (
	"testing"
	"testing/quick"
	"time"

	"softqos/internal/sim"
)

func TestSMPTwoCPUsRunTwoSpinners(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", WithCPUs(2))
	a := spin(h, "a", 10*time.Millisecond)
	b := spin(h, "b", 10*time.Millisecond)
	s.RunFor(10 * time.Second)
	if ta := a.CPUTime(); ta < 9900*time.Millisecond {
		t.Errorf("spinner a got %v on a 2-CPU host", ta)
	}
	if tb := b.CPUTime(); tb < 9900*time.Millisecond {
		t.Errorf("spinner b got %v on a 2-CPU host", tb)
	}
	if busy := h.BusyTime(); busy < 19800*time.Millisecond {
		t.Errorf("2-CPU busy time = %v of 20s", busy)
	}
}

func TestSMPFairShareAcrossCPUs(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", WithCPUs(2))
	procs := make([]*Proc, 6)
	for i := range procs {
		procs[i] = spin(h, "p", 10*time.Millisecond)
	}
	s.RunFor(60 * time.Second)
	// 6 spinners on 2 CPUs: each should get ~20s of 120 CPU-seconds.
	for i, p := range procs {
		share := p.CPUTime().Seconds()
		if share < 16 || share > 24 {
			t.Errorf("proc %d got %.1fs of expected ~20s", i, share)
		}
	}
}

func TestSMPPreemptsLowestPriorityCPU(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", WithCPUs(2))
	low := spin(h, "low", 10*time.Millisecond)
	mid := spin(h, "mid", 10*time.Millisecond)
	s.RunFor(5 * time.Second) // both decay to 0 and occupy both CPUs
	mid.SetBoost(10)
	// An RT process must displace the lowest-priority running proc (low
	// or mid; with mid boosted, low must be the victim).
	var rt *Proc
	rt = h.Spawn("rt", func(p *Proc) {
		var loop func()
		loop = func() { p.Use(10*time.Millisecond, func() { loop() }) }
		loop()
	}, AsClass(RT, 5))
	mark := s.Now()
	lowT, midT := low.CPUTime(), mid.CPUTime()
	s.RunFor(10 * time.Second)
	elapsed := (s.Now() - mark).Duration().Seconds()
	gotRT := rt.CPUTime().Seconds()
	gotMid := (mid.CPUTime() - midT).Seconds()
	gotLow := (low.CPUTime() - lowT).Seconds()
	if gotRT < elapsed*0.95 {
		t.Errorf("RT got %.1fs of %.1fs", gotRT, elapsed)
	}
	if gotMid < elapsed*0.95 {
		t.Errorf("boosted TS proc got %.1fs of %.1fs alongside RT", gotMid, elapsed)
	}
	if gotLow > elapsed*0.1 {
		t.Errorf("lowest-priority proc still got %.1fs on a saturated 2-CPU host", gotLow)
	}
}

func TestWithCPUsValidation(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("WithCPUs(0) did not panic")
		}
	}()
	NewHost(s, "h", WithCPUs(0))
}

// Property: the scheduler is work-conserving and never over-delivers.
// For any set of spinners on any CPU count, total CPU time handed out
// equals min(nproc, ncpu) * elapsed (within rounding).
func TestPropertyWorkConservation(t *testing.T) {
	prop := func(nproc, ncpu uint8) bool {
		np := int(nproc%6) + 1
		nc := int(ncpu%4) + 1
		s := sim.New(int64(np*10 + nc))
		h := NewHost(s, "h", WithCPUs(nc))
		procs := make([]*Proc, np)
		for i := range procs {
			procs[i] = spin(h, "p", 7*time.Millisecond)
		}
		s.RunFor(20 * time.Second)
		var total time.Duration
		for _, p := range procs {
			total += p.CPUTime()
		}
		m := np
		if nc < np {
			m = nc
		}
		expect := time.Duration(m) * 20 * time.Second
		diff := total - expect
		if diff < 0 {
			diff = -diff
		}
		return diff < 100*time.Millisecond
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: CPU time is conserved under arbitrary boosts — changing
// priorities redistributes time but never creates or destroys it.
func TestPropertyBoostConservation(t *testing.T) {
	prop := func(boosts []int8) bool {
		if len(boosts) == 0 || len(boosts) > 5 {
			return true
		}
		s := sim.New(99)
		h := NewHost(s, "h")
		procs := make([]*Proc, len(boosts))
		for i := range procs {
			procs[i] = spin(h, "p", 10*time.Millisecond)
		}
		s.RunFor(5 * time.Second)
		for i, b := range boosts {
			procs[i].SetBoost(int(b))
		}
		s.RunFor(30 * time.Second)
		var total time.Duration
		for _, p := range procs {
			total += p.CPUTime()
		}
		diff := total - 35*time.Second
		if diff < 0 {
			diff = -diff
		}
		return diff < 100*time.Millisecond
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
