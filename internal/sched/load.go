package sched

import (
	"math"
	"time"

	"softqos/internal/sim"
)

// loadSampleInterval is how often the run queue is sampled into the load
// average, and loadDecayWindow the damping horizon (the classic UNIX
// one-minute load average).
const (
	loadSampleInterval = time.Second
	loadDecayWindow    = time.Minute
)

// loadTracker maintains the exponentially damped run-queue length.
type loadTracker struct {
	avg float64
	k   float64
}

func (l *loadTracker) init(s *sim.Simulator, h *Host) {
	l.k = math.Exp(-float64(loadSampleInterval) / float64(loadDecayWindow))
	s.Every(loadSampleInterval, func() {
		n := float64(h.RunQueueLen())
		l.avg = l.avg*l.k + n*(1-l.k)
	})
}
