// Package sched simulates per-host CPU scheduling and memory residency —
// the operating-system substrate whose allocation knobs (time-sharing
// priorities, real-time cycles, resident pages) the paper's resource
// managers manipulate.
//
// The scheduler follows the shape of the Solaris time-sharing class used
// by the prototype: per-priority round-robin run queues, a dispatch table
// that grants long quanta at low priorities, priority decay on quantum
// expiry and priority boost on sleep return, plus a fixed-priority
// real-time class that dispatches ahead of all time-sharing work.
package sched

import (
	"fmt"
	"time"

	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// pagePenalty is the slowdown multiplier applied to a process whose
// resident set has been completely paged out.
const pagePenalty = 4.0

// Option configures a Host.
type Option func(*Host)

// WithCPUs sets the number of CPUs (default 1, as in the prototype's
// workstation).
func WithCPUs(n int) Option {
	return func(h *Host) {
		if n < 1 {
			panic("sched: host needs at least one CPU")
		}
		h.ncpu = n
	}
}

// WithMemory sets the number of physical pages available to processes.
func WithMemory(pages int) Option {
	return func(h *Host) { h.physPages = pages }
}

// Host is a simulated machine: CPUs, run queues, memory and the processes
// running on it.
type Host struct {
	sim  *sim.Simulator
	name string
	ncpu int

	ready      [numPriority][]*Proc
	readyCount int
	running    []*Proc

	procs   map[int]*Proc
	nextPID int

	physPages int
	freePages int

	load loadTracker

	busy time.Duration // cumulative CPU busy time across all CPUs

	metrics *hostSchedMetrics
}

// hostSchedMetrics holds the scheduler's pre-resolved metric handles.
type hostSchedMetrics struct {
	dispatches      *telemetry.Counter // context switches onto a CPU
	preemptions     *telemetry.Counter
	priorityChanges *telemetry.Counter // management-driven SetBoost/SetClass
}

// SetMetrics attaches the host's scheduler to a metrics registry:
// counters for context switches, preemptions and management priority
// changes, plus pull gauges for run-queue length and load average, all
// under "sched.<host>.*".
func (h *Host) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		h.metrics = nil
		return
	}
	prefix := "sched." + h.name + "."
	h.metrics = &hostSchedMetrics{
		dispatches:      reg.Counter(prefix + "dispatches"),
		preemptions:     reg.Counter(prefix + "preemptions"),
		priorityChanges: reg.Counter(prefix + "priority_changes"),
	}
	reg.GaugeFunc(prefix+"run_queue", func() float64 { return float64(h.RunQueueLen()) })
	reg.GaugeFunc(prefix+"load_avg", func() float64 { return h.LoadAvg() })
}

// NewHost creates a host attached to the simulator. Load-average sampling
// starts immediately.
func NewHost(s *sim.Simulator, name string, opts ...Option) *Host {
	h := &Host{
		sim:       s,
		name:      name,
		ncpu:      1,
		physPages: 1 << 16,
		procs:     make(map[int]*Proc),
		nextPID:   100,
	}
	for _, o := range opts {
		o(h)
	}
	h.freePages = h.physPages
	h.load.init(s, h)
	return h
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Sim returns the simulator the host is attached to.
func (h *Host) Sim() *sim.Simulator { return h.sim }

// CPUs returns the number of CPUs.
func (h *Host) CPUs() int { return h.ncpu }

// LoadAvg returns the exponentially damped one-minute load average.
func (h *Host) LoadAvg() float64 { return h.load.avg }

// RunQueueLen returns the instantaneous number of runnable plus running
// processes (the quantity the load average damps).
func (h *Host) RunQueueLen() int { return h.readyCount + len(h.running) }

// BusyTime returns cumulative CPU busy time across all CPUs, including
// partially executed slices. Callers measuring utilization over a window
// take deltas: (busy2-busy1)/(t2-t1)/CPUs.
func (h *Host) BusyTime() time.Duration {
	busy := h.busy
	now := h.sim.Now()
	for _, p := range h.running {
		busy += (now - p.dispatchedAt).Duration()
	}
	return busy
}

// FreePages returns unallocated physical pages.
func (h *Host) FreePages() int { return h.freePages }

// PhysPages returns total physical pages.
func (h *Host) PhysPages() int { return h.physPages }

// Proc returns the process with the given pid, or nil.
func (h *Host) Proc(pid int) *Proc { return h.procs[pid] }

// Procs returns a snapshot of all live processes.
func (h *Host) Procs() []*Proc {
	out := make([]*Proc, 0, len(h.procs))
	for _, p := range h.procs {
		out = append(out, p)
	}
	return out
}

// SpawnOption configures a process at spawn time.
type SpawnOption func(*Proc)

// AsClass spawns the process in class c at class-local priority prio.
func AsClass(c Class, prio int) SpawnOption {
	return func(p *Proc) { p.class = c; p.dyn = clampTS(prio) }
}

// WithWorkingSet declares the process's desired resident pages; as many as
// fit are made resident at spawn.
func WithWorkingSet(pages int) SpawnOption {
	return func(p *Proc) { p.workingSet = pages }
}

// Spawn creates a process and invokes start (as the process's first
// continuation) at the current instant. start must issue a step.
func (h *Host) Spawn(name string, start func(*Proc), opts ...SpawnOption) *Proc {
	p := &Proc{
		host:  h,
		pid:   h.nextPID,
		name:  name,
		class: TS,
		dyn:   29, // middle of the TS range, like a fresh Solaris process
		state: Deciding,
	}
	h.nextPID++
	for _, o := range opts {
		o(p)
	}
	if p.workingSet > 0 {
		p.resident = h.claimPages(p.workingSet)
	}
	h.procs[p.pid] = p
	p.resetQuantum()
	p.scheduleNow(func() { start(p) })
	return p
}

// SetResident adjusts a process's resident pages (the memory manager's
// lever). Growth is limited by free pages; shrink returns pages to the
// pool. It returns the resulting resident size.
func (h *Host) SetResident(p *Proc, pages int) int {
	if pages < 0 {
		pages = 0
	}
	delta := pages - p.resident
	if delta > 0 {
		got := h.claimPages(delta)
		p.resident += got
	} else if delta < 0 {
		h.releasePages(-delta)
		p.resident = pages
	}
	if p.state == Running {
		// Re-dispatch so the new paging slowdown takes effect and the
		// partial slice is accounted under the old factor.
		h.unplug(p)
		h.enqueueFront(p)
		h.rebalance()
	}
	return p.resident
}

func (h *Host) claimPages(want int) int {
	if want > h.freePages {
		want = h.freePages
	}
	h.freePages -= want
	return want
}

func (h *Host) releasePages(n int) { h.freePages += n }

// enqueue appends p to the ready bucket for its current global priority.
func (h *Host) enqueue(p *Proc) {
	p.state = Runnable
	p.readyPrio = p.globalPriority()
	h.ready[p.readyPrio] = append(h.ready[p.readyPrio], p)
	h.readyCount++
}

// enqueueFront puts a preempted process at the head of its bucket so it
// resumes before queue-mates that have not run yet.
func (h *Host) enqueueFront(p *Proc) {
	p.state = Runnable
	p.readyPrio = p.globalPriority()
	h.ready[p.readyPrio] = append([]*Proc{p}, h.ready[p.readyPrio]...)
	h.readyCount++
}

// removeReady removes p from its ready bucket.
func (h *Host) removeReady(p *Proc) {
	q := h.ready[p.readyPrio]
	for i, other := range q {
		if other == p {
			h.ready[p.readyPrio] = append(q[:i:i], q[i+1:]...)
			h.readyCount--
			return
		}
	}
	panic(fmt.Sprintf("sched: %s not found in ready queue %d", p.name, p.readyPrio))
}

func (h *Host) highestReady() int {
	if h.readyCount == 0 {
		return -1
	}
	for prio := numPriority - 1; prio >= 0; prio-- {
		if len(h.ready[prio]) > 0 {
			return prio
		}
	}
	return -1
}

// rebalance ensures the CPUs run the highest-priority runnable processes,
// preempting as needed. It is called after every state change.
func (h *Host) rebalance() {
	for {
		hp := h.highestReady()
		if hp < 0 {
			return
		}
		if len(h.running) < h.ncpu {
			h.dispatch(h.popReady(hp))
			continue
		}
		// Find the lowest-priority running process.
		low := 0
		for i, p := range h.running {
			if p.globalPriority() < h.running[low].globalPriority() {
				low = i
			}
		}
		victim := h.running[low]
		if hp <= victim.globalPriority() {
			return
		}
		h.unplug(victim)
		victim.preemptions++
		if h.metrics != nil {
			h.metrics.preemptions.Inc()
		}
		h.enqueueFront(victim)
		h.dispatch(h.popReady(hp))
	}
}

func (h *Host) popReady(prio int) *Proc {
	q := h.ready[prio]
	p := q[0]
	h.ready[prio] = q[1:]
	h.readyCount--
	return p
}

// dispatch places p on a CPU and schedules the end of its slice (burst
// completion or quantum expiry, whichever comes first).
func (h *Host) dispatch(p *Proc) {
	p.state = Running
	p.dispatches++
	if h.metrics != nil {
		h.metrics.dispatches.Inc()
	}
	p.dispatchedAt = h.sim.Now()
	h.running = append(h.running, p)

	slice := p.inflate(p.remainingWork)
	p.sliceFinishes = true
	if p.quantumLeft < slice {
		slice = p.quantumLeft
		p.sliceFinishes = false
	}
	p.sliceEnd = h.sim.After(slice, func() { h.sliceExpired(p) })
}

// unplug removes p from its CPU, accounting for the work done. The caller
// decides p's next state.
func (h *Host) unplug(p *Proc) {
	elapsed := (h.sim.Now() - p.dispatchedAt).Duration()
	work := p.deflate(elapsed)
	if work > p.remainingWork {
		work = p.remainingWork
	}
	p.remainingWork -= work
	p.cpuTime += work
	p.quantumLeft -= elapsed
	if p.quantumLeft < 0 {
		p.quantumLeft = 0
	}
	h.busy += elapsed
	p.sliceEnd.Cancel()
	for i, other := range h.running {
		if other == p {
			h.running = append(h.running[:i], h.running[i+1:]...)
			break
		}
	}
}

// sliceExpired handles the end of a dispatch slice.
func (h *Host) sliceExpired(p *Proc) {
	finished := p.sliceFinishes
	h.unplug(p)
	if finished {
		// The slice was scheduled to complete the burst: clear any
		// sub-nanosecond residue left by inflate/deflate rounding under
		// paging slowdowns (otherwise a 1 ns remainder re-dispatches
		// forever).
		p.cpuTime += p.remainingWork
		p.remainingWork = 0
	}
	expired := p.quantumLeft <= 0
	if expired {
		// Quantum exhausted (whether or not the burst also completed):
		// TS priority decays and a fresh quantum is granted.
		if p.class == TS {
			p.dyn = tsExpire(p.dyn)
		}
		p.resetQuantum()
	}
	if p.remainingWork > 0 {
		// Burst unfinished: re-queue behind (new-)priority peers.
		h.enqueue(p)
		h.rebalance()
		return
	}
	// Burst complete: run the continuation, which issues the next step.
	// Only a process with quantum remaining may continue in place; one
	// whose quantum expired at the burst boundary yields like any other
	// quantum expiry.
	p.remainingWork = 0
	p.state = Deciding
	then := p.then
	p.then = nil
	p.justRan = !expired
	then()
	p.justRan = false
	p.checkDecided()
	if !p.pendingNow {
		h.rebalance()
	}
	// With an immediate continuation pending, the CPU decision is
	// deferred to that continuation (same virtual instant): otherwise a
	// queued process would steal the slot from a decoder doing a
	// zero-cost step between bursts.
}
