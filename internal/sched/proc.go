package sched

import (
	"fmt"
	"time"

	"softqos/internal/sim"
)

// State is the life-cycle state of a simulated process.
type State int

const (
	// Deciding means the process is between steps: a continuation is
	// executing (or about to) and must issue Use/Sleep/Recv/Exit.
	Deciding State = iota
	// Runnable means the process waits on a run queue for a CPU.
	Runnable
	// Running means the process is on a CPU.
	Running
	// Sleeping means the process waits for a timer.
	Sleeping
	// Blocked means the process waits for a message on a Queue.
	Blocked
	// Exited means the process has terminated.
	Exited
)

func (s State) String() string {
	switch s {
	case Deciding:
		return "deciding"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Sleeping:
		return "sleeping"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	default:
		return "state?"
	}
}

// Proc is a simulated process. Its behaviour is expressed in
// continuation-passing style: application code calls Use, Sleep, Recv or
// Exit, each of which takes a continuation invoked when the step finishes.
// All methods must be called from within simulation events (the simulation
// is single-threaded).
type Proc struct {
	host *Host
	pid  int
	name string

	class Class
	dyn   int // TS dynamic priority or RT fixed priority (0..59)
	boost int // management-set priority offset (TS only)

	state State

	// Current CPU burst.
	remainingWork time.Duration // pure CPU work left
	then          func()        // continuation after the burst
	quantumLeft   time.Duration
	readyPrio     int // bucket index while Runnable

	// Dispatch bookkeeping while Running.
	dispatchedAt  sim.Time
	sliceEnd      sim.EventID
	sliceFinishes bool // the scheduled slice completes the burst

	// Sleep/Recv bookkeeping.
	wakeEv     sim.EventID
	recvQ      *Queue
	recvThen   func(any)
	pendingNow bool // an immediate (zero-CPU) continuation is scheduled
	justRan    bool // continuation runs right after a completed burst

	// Memory model.
	workingSet int // pages the process wants resident
	resident   int // pages actually resident

	// Accounting.
	cpuTime     time.Duration
	dispatches  int
	preemptions int
	sleeps      int
}

// PID returns the process identifier, unique within its host.
func (p *Proc) PID() int { return p.pid }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// Host returns the host the process runs on.
func (p *Proc) Host() *Host { return p.host }

// State returns the current life-cycle state.
func (p *Proc) State() State { return p.state }

// Class returns the scheduling class.
func (p *Proc) Class() Class { return p.class }

// Priority returns the current class-local priority (0..59).
func (p *Proc) Priority() int { return p.dyn }

// Boost returns the management-set TS priority offset.
func (p *Proc) Boost() int { return p.boost }

// CPUTime returns cumulative CPU time consumed, including the portion of
// any burst currently executing.
func (p *Proc) CPUTime() time.Duration {
	t := p.cpuTime
	if p.state == Running {
		elapsed := (p.host.sim.Now() - p.dispatchedAt).Duration()
		t += p.deflate(elapsed)
	}
	return t
}

// Dispatches returns how many times the process has been placed on a CPU.
func (p *Proc) Dispatches() int { return p.dispatches }

// Preemptions returns how many times the process was preempted.
func (p *Proc) Preemptions() int { return p.preemptions }

// WorkingSet returns the number of pages the process wants resident.
func (p *Proc) WorkingSet() int { return p.workingSet }

// SetWorkingSet declares the process's desired resident pages after
// spawn (e.g. when the memory footprint becomes known at run time).
func (p *Proc) SetWorkingSet(pages int) {
	if pages < 0 {
		pages = 0
	}
	p.workingSet = pages
}

// Resident returns the number of pages currently resident.
func (p *Proc) Resident() int { return p.resident }

// globalPriority maps class and priority to the single dispatch scale.
func (p *Proc) globalPriority() int {
	if p.class == RT {
		return rtBase + clampTS(p.dyn)
	}
	return clampTS(p.dyn + p.boost)
}

// slowFactor is the CPU-time inflation caused by paging when the resident
// set is smaller than the working set (memory pressure model: a fully
// paged-out process runs 1+pagePenalty times slower).
func (p *Proc) slowFactor() float64 {
	if p.workingSet <= 0 || p.resident >= p.workingSet {
		return 1
	}
	deficit := 1 - float64(p.resident)/float64(p.workingSet)
	return 1 + pagePenalty*deficit
}

// inflate converts pure CPU work to wall time under the current paging
// slowdown; deflate is the inverse used when accounting partial bursts.
func (p *Proc) inflate(work time.Duration) time.Duration {
	return time.Duration(float64(work) * p.slowFactor())
}

func (p *Proc) deflate(wall time.Duration) time.Duration {
	return time.Duration(float64(wall) / p.slowFactor())
}

// Use consumes d of CPU time, then invokes then. A non-positive d invokes
// then at the current instant without competing for the CPU.
func (p *Proc) Use(d time.Duration, then func()) {
	p.mustBeDeciding("Use")
	if d <= 0 {
		p.scheduleNow(then)
		return
	}
	p.remainingWork = d
	p.then = then
	if p.quantumLeft <= 0 {
		p.resetQuantum()
	}
	if p.justRan {
		// A process that finished a burst and immediately needs more CPU
		// never yielded: it resumes ahead of its queue-mates with its
		// remaining quantum, as on a real kernel where a computation is
		// only rescheduled at quantum expiry or when it blocks.
		p.host.enqueueFront(p)
	} else {
		p.host.enqueue(p)
	}
	p.host.rebalance()
}

// Sleep suspends the process for d of virtual time, then invokes then.
// Returning from sleep boosts a TS process's dynamic priority (slpret).
func (p *Proc) Sleep(d time.Duration, then func()) {
	p.mustBeDeciding("Sleep")
	if d <= 0 {
		// A zero sleep is not a real sleep: no priority boost.
		p.scheduleNow(then)
		return
	}
	p.state = Sleeping
	p.sleeps++
	p.wakeEv = p.host.sim.After(d, func() {
		p.applySleepReturn()
		p.state = Deciding
		then()
		p.checkDecided()
	})
}

// Recv waits for a value from q, then invokes then with it. If a value is
// already queued it is delivered at the current instant with no priority
// boost; a process that actually blocks receives the slpret boost on wake.
func (p *Proc) Recv(q *Queue, then func(any)) {
	p.mustBeDeciding("Recv")
	if v, ok := q.pop(); ok {
		p.scheduleNow(func() { then(v) })
		return
	}
	p.state = Blocked
	p.recvQ = q
	p.recvThen = then
	q.addWaiter(p)
}

// deliver hands a queued value to a blocked process.
func (p *Proc) deliver(v any) {
	p.recvQ = nil
	then := p.recvThen
	p.recvThen = nil
	p.applySleepReturn()
	p.state = Deciding
	then(v)
	p.checkDecided()
}

// Exit terminates the process and releases its resident pages.
func (p *Proc) Exit() {
	if p.state == Exited {
		return
	}
	switch p.state {
	case Running:
		p.host.unplug(p)
	case Runnable:
		p.host.removeReady(p)
	case Sleeping:
		p.wakeEv.Cancel()
	case Blocked:
		p.recvQ.removeWaiter(p)
		p.recvQ = nil
		p.recvThen = nil
	}
	p.state = Exited
	p.host.releasePages(p.resident)
	p.resident = 0
	delete(p.host.procs, p.pid)
	p.host.rebalance()
}

// SetBoost sets the management priority offset for a TS process (the
// paper's CPU manager lever: manipulate time-sharing priorities). The
// effective priority is clamped to the TS range.
func (p *Proc) SetBoost(b int) {
	if p.boost == b || p.state == Exited {
		return
	}
	p.boost = b
	if p.host.metrics != nil {
		p.host.metrics.priorityChanges.Inc()
	}
	p.reprioritize()
}

// SetClass moves the process to class c at class-local priority prio (the
// paper's alternative lever: allocate real-time CPU cycles).
func (p *Proc) SetClass(c Class, prio int) {
	if p.state == Exited {
		return
	}
	p.class = c
	p.dyn = clampTS(prio)
	if p.host.metrics != nil {
		p.host.metrics.priorityChanges.Inc()
	}
	p.reprioritize()
}

// reprioritize re-seats the process after an external priority change.
func (p *Proc) reprioritize() {
	switch p.state {
	case Runnable:
		p.host.removeReady(p)
		p.host.enqueue(p)
		p.host.rebalance()
	case Running:
		// A demotion may allow a ready process to preempt; a promotion
		// never needs action while already on CPU.
		p.host.rebalance()
	}
}

func (p *Proc) applySleepReturn() {
	if p.class == TS {
		p.dyn = tsSleepReturn(p.dyn)
	}
	p.resetQuantum()
}

func (p *Proc) resetQuantum() {
	if p.class == RT {
		p.quantumLeft = rtQuantum
	} else {
		p.quantumLeft = tsQuantum(clampTS(p.dyn + p.boost))
	}
}

func (p *Proc) mustBeDeciding(op string) {
	if p.state != Deciding {
		panic(fmt.Sprintf("sched: %s.%s called in state %v", p.name, op, p.state))
	}
}

// scheduleNow runs a continuation at the current instant without occupying
// a CPU, used for zero-cost steps (empty Use, non-blocking Recv, zero
// Sleep). A process that was continuing in place (fresh off a completed
// burst with quantum remaining) keeps that right across the zero-cost
// step: a decoder doing a non-blocking read between frames has not
// yielded the CPU.
func (p *Proc) scheduleNow(then func()) {
	p.pendingNow = true
	wasContinuing := p.justRan
	p.host.sim.Schedule(p.host.sim.Now(), func() {
		p.pendingNow = false
		if p.state != Deciding {
			return // exited in the meantime
		}
		p.justRan = wasContinuing
		then()
		p.justRan = false
		p.checkDecided()
		p.host.rebalance()
	})
}

// checkDecided panics if a continuation returned without issuing a next
// step; that is always a bug in the process program.
func (p *Proc) checkDecided() {
	if p.state == Deciding && !p.pendingNow {
		panic(fmt.Sprintf("sched: process %s continuation issued no step (Use/Sleep/Recv/Exit)", p.name))
	}
}
