package sched

// Queue is a bounded FIFO message queue processes block on — the model of
// the prototype's UNIX message queues and socket buffers. Producers (the
// network, other processes) push values; consumers receive them with
// Proc.Recv. When full, Push drops the value (drop-tail, like a UDP socket
// buffer under an unresponsive reader).
//
// The paper's buffer-length sensor (Example 5) reads Len to decide whether
// a QoS fault is local (long buffer: the process cannot drain fast enough)
// or upstream (short buffer: frames are not arriving).
type Queue struct {
	name    string
	cap     int
	items   []any
	waiters []*Proc

	pushed  uint64
	dropped uint64
	popped  uint64
}

// NewQueue creates a queue holding at most capacity items; capacity <= 0
// means unbounded.
func NewQueue(name string, capacity int) *Queue {
	return &Queue{name: name, cap: capacity}
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue) Cap() int { return q.cap }

// Pushed returns the number of successful pushes.
func (q *Queue) Pushed() uint64 { return q.pushed }

// Dropped returns the number of values dropped because the queue was full.
func (q *Queue) Dropped() uint64 { return q.dropped }

// Popped returns the number of values delivered to consumers.
func (q *Queue) Popped() uint64 { return q.popped }

// Push enqueues v, waking a blocked receiver if any. It reports false if
// the value was dropped because the queue was full.
func (q *Queue) Push(v any) bool {
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.pushed++
		q.popped++
		p.deliver(v)
		return true
	}
	if q.cap > 0 && len(q.items) >= q.cap {
		q.dropped++
		return false
	}
	q.items = append(q.items, v)
	q.pushed++
	return true
}

func (q *Queue) pop() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.popped++
	return v, true
}

func (q *Queue) addWaiter(p *Proc) { q.waiters = append(q.waiters, p) }

func (q *Queue) removeWaiter(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i:i], q.waiters[i+1:]...)
			return
		}
	}
}
