package sched

import (
	"testing"
	"time"

	"softqos/internal/sim"
)

// spin creates a CPU-bound process that burns the CPU in bursts of burst
// forever.
func spin(h *Host, name string, burst time.Duration) *Proc {
	var loop func(p *Proc)
	loop = func(p *Proc) { p.Use(burst, func() { loop(p) }) }
	return h.Spawn(name, func(p *Proc) { loop(p) })
}

func TestSingleProcGetsAllCPU(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	p := spin(h, "spin", 10*time.Millisecond)
	s.RunFor(10 * time.Second)
	if got := p.CPUTime(); got < 9900*time.Millisecond || got > 10*time.Second {
		t.Errorf("lone spinner got %v CPU of 10s", got)
	}
	if h.LoadAvg() < 0.1 {
		t.Errorf("load average stayed at %v with a spinner running", h.LoadAvg())
	}
}

func TestEqualPrioritySharing(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	a := spin(h, "a", 10*time.Millisecond)
	b := spin(h, "b", 10*time.Millisecond)
	s.RunFor(60 * time.Second)
	ta, tb := a.CPUTime(), b.CPUTime()
	sum := ta + tb
	if sum < 59*time.Second {
		t.Errorf("two spinners only used %v of 60s", sum)
	}
	ratio := float64(ta) / float64(tb)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair split between equal spinners: %v vs %v", ta, tb)
	}
}

func TestCPUBoundPriorityDecays(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	p := spin(h, "spin", 10*time.Millisecond)
	s.RunFor(5 * time.Second)
	if p.Priority() != 0 {
		t.Errorf("CPU-bound TS priority = %d after 5s, want decay to 0", p.Priority())
	}
}

func TestSleeperGetsBoosted(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	var sleeper *Proc
	var loop func()
	loop = func() {
		sleeper.Use(time.Millisecond, func() {
			sleeper.Sleep(50*time.Millisecond, loop)
		})
	}
	sleeper = h.Spawn("interactive", func(p *Proc) { loop() })
	spin(h, "hog", 10*time.Millisecond)
	s.RunFor(10 * time.Second)
	if sleeper.Priority() < 50 {
		t.Errorf("interactive priority = %d, want boosted near top", sleeper.Priority())
	}
	// The interactive process should run ~1ms of each ~51ms cycle despite
	// the hog: ~196 cycles in 10s.
	if got := sleeper.CPUTime(); got < 150*time.Millisecond {
		t.Errorf("interactive got only %v CPU alongside hog", got)
	}
}

func TestBoostGivesCPUShare(t *testing.T) {
	// The paper's core lever: raising a process's TS priority must raise
	// its CPU share under contention.
	s := sim.New(1)
	h := NewHost(s, "h")
	fav := spin(h, "favoured", 10*time.Millisecond)
	for i := 0; i < 4; i++ {
		spin(h, "load", 10*time.Millisecond)
	}
	s.RunFor(30 * time.Second)
	base := fav.CPUTime()
	if share := base.Seconds() / 30; share < 0.1 || share > 0.3 {
		t.Errorf("unboosted share = %.2f, want ~0.2", share)
	}
	fav.SetBoost(40)
	mark := fav.CPUTime()
	s.RunFor(30 * time.Second)
	boosted := fav.CPUTime() - mark
	if share := boosted.Seconds() / 30; share < 0.95 {
		t.Errorf("boosted share = %.2f, want ~1.0", share)
	}
}

func TestRTClassPreemptsTS(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	spin(h, "ts-hog", 10*time.Millisecond)
	var rt *Proc
	var loop func()
	loop = func() { rt.Use(5*time.Millisecond, func() { rt.Sleep(5*time.Millisecond, loop) }) }
	rt = h.Spawn("rt", func(p *Proc) { loop() }, AsClass(RT, 10))
	s.RunFor(10 * time.Second)
	// RT proc alternates 5ms on / 5ms off: should get ~50% of the CPU.
	if got := rt.CPUTime(); got < 4800*time.Millisecond {
		t.Errorf("RT process got %v of expected ~5s", got)
	}
}

func TestPreemptionOnWake(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	hog := spin(h, "hog", 100*time.Millisecond)
	var wakeAt, ranAt sim.Time
	h.Spawn("waker", func(p *Proc) {
		p.Sleep(3*time.Second, func() {
			wakeAt = s.Now()
			p.Use(time.Millisecond, func() {
				ranAt = s.Now()
				p.Exit()
			})
		})
	})
	s.RunFor(5 * time.Second)
	if hog.Preemptions() == 0 {
		t.Error("hog was never preempted by boosted waker")
	}
	latency := (ranAt - wakeAt).Duration()
	if latency > 2*time.Millisecond {
		t.Errorf("woken process waited %v; slpret boost should preempt the decayed hog immediately", latency)
	}
}

func TestExitReleasesCPUAndPages(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", WithMemory(1000))
	free0 := h.FreePages()
	var p *Proc
	p = h.Spawn("tmp", func(q *Proc) {
		q.Use(time.Millisecond, func() { q.Exit() })
	}, WithWorkingSet(200))
	if h.FreePages() != free0-200 {
		t.Fatalf("free pages after spawn = %d, want %d", h.FreePages(), free0-200)
	}
	s.RunFor(time.Second)
	if p.State() != Exited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	if h.FreePages() != free0 {
		t.Errorf("free pages after exit = %d, want %d", h.FreePages(), free0)
	}
	if h.Proc(p.PID()) != nil {
		t.Error("exited process still registered")
	}
}

func TestQueueBlockingRecv(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	q := NewQueue("q", 10)
	var got []any
	h.Spawn("consumer", func(p *Proc) {
		var loop func(v any)
		loop = func(v any) {
			got = append(got, v)
			p.Use(time.Millisecond, func() { p.Recv(q, loop) })
		}
		p.Recv(q, loop)
	})
	s.After(10*time.Millisecond, func() { q.Push(1) })
	s.After(20*time.Millisecond, func() { q.Push(2); q.Push(3) })
	s.RunFor(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("consumer got %v, want [1 2 3]", got)
	}
	if q.Popped() != 3 || q.Pushed() != 3 {
		t.Errorf("counters pushed=%d popped=%d", q.Pushed(), q.Popped())
	}
}

func TestQueueDropWhenFull(t *testing.T) {
	q := NewQueue("q", 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity succeeded")
	}
	if q.Dropped() != 1 || q.Len() != 2 {
		t.Errorf("dropped=%d len=%d, want 1, 2", q.Dropped(), q.Len())
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	q := NewQueue("q", 0)
	var order []string
	mk := func(name string) {
		h.Spawn(name, func(p *Proc) {
			p.Recv(q, func(v any) {
				order = append(order, name)
				p.Exit()
			})
		})
	}
	mk("first")
	mk("second")
	s.After(time.Millisecond, func() { q.Push("x"); q.Push("y") })
	s.RunFor(time.Second)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("waiter wake order = %v", order)
	}
}

func TestMemoryPressureSlowsProcess(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", WithMemory(10000))
	done := 0
	var p *Proc
	var loop func()
	loop = func() {
		p.Use(10*time.Millisecond, func() {
			done++
			loop()
		})
	}
	p = h.Spawn("worker", func(q *Proc) { loop() }, WithWorkingSet(1000))
	s.RunFor(10 * time.Second)
	fullSpeed := done
	h.SetResident(p, 0) // fully paged out: pagePenalty slowdown
	done = 0
	s.RunFor(10 * time.Second)
	slowed := done
	wantMax := int(float64(fullSpeed)/(1+pagePenalty)) + 2
	if slowed > wantMax {
		t.Errorf("paged-out process completed %d bursts, want <= %d (full speed %d)", slowed, wantMax, fullSpeed)
	}
	h.SetResident(p, 1000)
	done = 0
	s.RunFor(10 * time.Second)
	if done < fullSpeed-5 {
		t.Errorf("restored process completed %d bursts, want ~%d", done, fullSpeed)
	}
}

func TestSetResidentBoundedByFreePages(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", WithMemory(100))
	p := spin(h, "p", time.Millisecond)
	got := h.SetResident(p, 500)
	if got != 100 {
		t.Errorf("SetResident over-allocated: %d of 100 physical", got)
	}
	if h.FreePages() != 0 {
		t.Errorf("free pages = %d, want 0", h.FreePages())
	}
	got = h.SetResident(p, 40)
	if got != 40 || h.FreePages() != 60 {
		t.Errorf("shrink: resident=%d free=%d, want 40, 60", got, h.FreePages())
	}
}

func TestLoadAverageTracksSpinners(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	for i := 0; i < 5; i++ {
		spin(h, "l", 10*time.Millisecond)
	}
	s.RunFor(5 * time.Minute)
	if la := h.LoadAvg(); la < 4.5 || la > 5.5 {
		t.Errorf("load average = %.2f with 5 spinners, want ~5", la)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() (time.Duration, uint64) {
		s := sim.New(99)
		h := NewHost(s, "h")
		p := spin(h, "a", 7*time.Millisecond)
		spin(h, "b", 13*time.Millisecond)
		var sl *Proc
		var loop func()
		loop = func() { sl.Use(2*time.Millisecond, func() { sl.Sleep(11*time.Millisecond, loop) }) }
		sl = h.Spawn("c", func(q *Proc) { loop() })
		s.RunFor(30 * time.Second)
		return p.CPUTime(), s.Fired()
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Errorf("non-deterministic schedule: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestUseZeroDuration(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	ran := false
	h.Spawn("z", func(p *Proc) {
		p.Use(0, func() {
			ran = true
			p.Exit()
		})
	})
	s.RunFor(time.Millisecond)
	if !ran {
		t.Error("zero-duration Use continuation never ran")
	}
}

func TestContinuationMustIssueStep(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	h.Spawn("bad", func(p *Proc) {
		p.Use(time.Millisecond, func() {
			// deliberately issue no step
		})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("step-less continuation did not panic")
		}
	}()
	s.RunFor(time.Second)
}

func TestBusyTimeAccounting(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	spin(h, "p", 10*time.Millisecond)
	s.RunFor(10 * time.Second)
	if busy := h.BusyTime(); busy < 9900*time.Millisecond || busy > 10*time.Second {
		t.Errorf("BusyTime = %v, want ~10s", busy)
	}
}

func TestExitWhileBlockedRemovesWaiter(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	q := NewQueue("q", 0)
	var blocked *Proc
	blocked = h.Spawn("blocked", func(p *Proc) {
		p.Recv(q, func(any) { t.Error("exited waiter received a value"); p.Exit() })
	})
	s.After(time.Millisecond, func() { blocked.Exit() })
	s.After(2*time.Millisecond, func() { q.Push("v") })
	s.RunFor(time.Second)
	if q.Len() != 1 {
		t.Errorf("queue len = %d; push after waiter exit should queue the value", q.Len())
	}
}

func TestSetClassMovesBetweenClasses(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	p := spin(h, "p", 10*time.Millisecond)
	spin(h, "other", 10*time.Millisecond)
	s.RunFor(time.Second)
	p.SetClass(RT, 5)
	if p.Class() != RT {
		t.Fatalf("class = %v, want RT", p.Class())
	}
	mark := p.CPUTime()
	s.RunFor(10 * time.Second)
	got := p.CPUTime() - mark
	if got < 9900*time.Millisecond {
		t.Errorf("RT spinner got %v of 10s", got)
	}
	p.SetClass(TS, 29)
	if p.Class() != TS || p.Priority() != 29 {
		t.Errorf("after return to TS: class=%v prio=%d", p.Class(), p.Priority())
	}
}
