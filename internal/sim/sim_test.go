package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(At(30*time.Millisecond), func() { got = append(got, 3) })
	s.Schedule(At(10*time.Millisecond), func() { got = append(got, 1) })
	s.Schedule(At(20*time.Millisecond), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != At(30*time.Millisecond) {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(At(time.Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.After(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != At(12*time.Millisecond) {
		t.Errorf("nested After fired at %v, want 12ms", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.After(time.Millisecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(0, func() {})
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	id := s.After(time.Millisecond, func() { fired = true })
	if !id.Pending() {
		t.Fatal("event should be pending before Run")
	}
	if !id.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if id.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if id.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	id := s.After(time.Millisecond, func() {})
	s.Run()
	if id.Cancel() {
		t.Fatal("Cancel after fire should return false")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(At(time.Duration(i)*time.Millisecond), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired", count)
	}
	s.Run() // resume
	if count != 10 {
		t.Fatalf("resume after Stop fired %d total, want 10", count)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	s.After(time.Millisecond, func() {})
	s.RunUntil(At(time.Second))
	if s.Now() != At(time.Second) {
		t.Errorf("RunUntil left clock at %v, want 1s", s.Now())
	}
	// Events beyond the deadline must not fire.
	fired := false
	s.After(2*time.Second, func() { fired = true })
	s.RunFor(time.Second)
	if fired {
		t.Fatal("event beyond RunFor deadline fired")
	}
	if s.Now() != At(2*time.Second) {
		t.Errorf("RunFor left clock at %v, want 2s", s.Now())
	}
	s.RunFor(time.Second)
	if !fired {
		t.Fatal("event within extended deadline did not fire")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []Time
	tk := s.Every(10*time.Millisecond, func() { ticks = append(ticks, s.Now()) })
	s.RunUntil(At(35 * time.Millisecond))
	tk.Stop()
	s.RunUntil(At(100 * time.Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := At(time.Duration(i+1) * 10 * time.Millisecond)
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(time.Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.RunUntil(At(time.Second))
	if n != 2 {
		t.Fatalf("ticker fired %d times after self-stop, want 2", n)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		var out []int
		var step func()
		step = func() {
			out = append(out, s.Rand().Intn(1000))
			if len(out) < 50 {
				s.After(time.Duration(1+s.Rand().Intn(5))*time.Millisecond, step)
			}
		}
		s.After(time.Millisecond, step)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order and the clock ends at the maximum offset.
func TestPropertyEventOrdering(t *testing.T) {
	prop := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := New(7)
		var fired []Time
		var max Time
		for _, off := range offsets {
			at := At(time.Duration(off) * time.Microsecond)
			if at > max {
				max = at
			}
			s.Schedule(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if At(1500*time.Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if At(time.Second).Duration() != time.Second {
		t.Error("Duration conversion wrong")
	}
	if At(2*time.Second).String() != "2s" {
		t.Errorf("String = %q", At(2*time.Second).String())
	}
}
