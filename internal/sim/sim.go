// Package sim provides the deterministic discrete-event simulation core on
// which every simulated substrate (CPU scheduler, network, managed
// applications, QoS managers) runs.
//
// A Simulator owns a virtual clock and a time-ordered event queue. Events
// scheduled for the same instant fire in the order they were scheduled,
// which keeps runs reproducible. All simulated components must derive any
// randomness they need from the Simulator's seeded RNG rather than from
// package math/rand globals.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds from the start of the
// simulation. It deliberately mirrors time.Duration so the rest of the code
// can use duration literals (33 * time.Millisecond) for intervals.
type Time int64

// Common conversions.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// At returns the Time corresponding to a duration from simulation start.
func At(d time.Duration) Time { return Time(d) }

// event is one pending callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 once popped
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (id EventID) Cancel() bool {
	if id.ev == nil || id.ev.dead || id.ev.idx < 0 {
		return false
	}
	id.ev.dead = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (id EventID) Pending() bool { return id.ev != nil && !id.ev.dead && id.ev.idx >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulated concurrency is expressed as events.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New returns a Simulator whose RNG is seeded with seed, at virtual time 0.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far (useful in tests and
// for progress metrics).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// cancelled events not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: that is always a logic error in a DES.
func (s *Simulator) Schedule(at Time, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev}
}

// After runs fn after duration d from the current time.
func (s *Simulator) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.Schedule(s.now+Time(d), fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Ticker is stopped or the simulation ends.
func (s *Simulator) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %v", interval))
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.arm()
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual interval.
type Ticker struct {
	sim      *Simulator
	interval time.Duration
	fn       func()
	id       EventID
	stopped  bool
}

func (t *Ticker) arm() {
	t.id = t.sim.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped { // fn may have stopped the ticker
			t.arm()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.id.Cancel()
}

// Stop halts the simulation after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single next event, advancing the clock to it. It
// reports false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (so a subsequent After is relative to the deadline even when
// the queue drained early).
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + Time(d)) }

func (s *Simulator) peek() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].dead {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}
