package msg_test

// FaultTransport conformance: wrapping either Transport implementation
// — the sim Bus or the live TCP NetTransport — in a faults.Transport
// must perturb delivery (drop, duplicate, delay, reorder) without ever
// corrupting what does arrive: every delivered message still passes
// Validate, keeps its From address, and the wrapped transport's byte
// accounting reflects exactly the messages that actually crossed it.
// (This lives in an external test package because faults imports msg.)

import (
	"testing"
	"time"

	"softqos/internal/faults"
	"softqos/internal/msg"
	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

type faultConfCase struct {
	name   string
	prefix string // wrapped transport's metric namespace
	open   func(t *testing.T) (inner msg.Transport, setMetrics func(*telemetry.Registry),
		clock telemetry.Clock, after func(time.Duration, func()), pump func())
}

var faultConfCases = []faultConfCase{
	{
		name:   "bus",
		prefix: "msg.bus",
		open: func(t *testing.T) (msg.Transport, func(*telemetry.Registry),
			telemetry.Clock, func(time.Duration, func()), func()) {
			s := sim.New(1)
			b := msg.NewBus(s, time.Millisecond, 5*time.Millisecond)
			return b, b.SetMetrics,
				func() time.Duration { return s.Now().Duration() },
				func(d time.Duration, fn func()) { s.After(d, fn) },
				func() { s.RunFor(time.Second) }
		},
	},
	{
		name:   "net",
		prefix: "msg.net",
		open: func(t *testing.T) (msg.Transport, func(*telemetry.Registry),
			telemetry.Clock, func(time.Duration, func()), func()) {
			nt, err := msg.NewNetTransport("conf", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { nt.Close() })
			// nil clock/after: wall-clock timers, rules always active.
			return nt, nt.SetMetrics, nil, nil,
				func() { time.Sleep(30 * time.Millisecond); nt.Sync(func() {}) }
		},
	},
}

func faultConfMsgs() (violation, directive msg.Message) {
	id := msg.Identity{Host: "h", PID: 1, Executable: "x"}
	violation = msg.Message{From: "/h/src", Body: msg.Violation{ID: id, Policy: "P"}}
	directive = msg.Message{From: "/h/src", Body: msg.Directive{Action: "actuate", Target: "frame_skip"}}
	return
}

// checkDelivered asserts every delivered message is still a valid,
// untampered envelope.
func checkDelivered(t *testing.T, got []msg.Message) {
	t.Helper()
	for i, m := range got {
		if err := msg.Validate(m); err != nil {
			t.Errorf("delivered message %d invalid after injection: %v", i, err)
		}
		if m.From != "/h/src" {
			t.Errorf("delivered message %d: From = %q, want /h/src", i, m.From)
		}
	}
}

func TestFaultTransportConformance(t *testing.T) {
	for _, tc := range faultConfCases {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("drop", func(t *testing.T) {
				inner, setMetrics, clock, after, pump := tc.open(t)
				reg := telemetry.NewRegistry(func() time.Duration { return 0 })
				setMetrics(reg)
				ft := faults.New(inner, &faults.Plan{Seed: 1, Rules: []faults.Rule{
					{Name: "kill-violations", Kind: faults.KindDrop, Types: []string{"violation"}},
				}}, clock, after)
				ft.SetMetrics(reg)

				var got []msg.Message
				ft.Bind("/conf/sink", "conf", func(m msg.Message) { got = append(got, m) })
				violation, directive := faultConfMsgs()
				if err := ft.Send("/conf/sink", violation); err != nil {
					t.Fatalf("dropped send must look like loss in flight, got %v", err)
				}
				if err := ft.Send("/conf/sink", directive); err != nil {
					t.Fatal(err)
				}
				pump()

				if len(got) != 1 {
					t.Fatalf("delivered %d messages, want only the directive", len(got))
				}
				checkDelivered(t, got)
				if n := ft.Counts()[faults.KindDrop]; n != 1 {
					t.Errorf("drop count = %d, want 1", n)
				}
				if n := reg.Counter("faults.injected.drop").Value(); n != 1 {
					t.Errorf("faults.injected.drop = %d, want 1", n)
				}
				// Byte accounting stays truthful: the dropped violation
				// never reached the wrapped transport.
				if n := reg.Counter(tc.prefix + ".sent.violation").Value(); n != 0 {
					t.Errorf("%s.sent.violation = %d for a fault-dropped message", tc.prefix, n)
				}
				if n := reg.Counter(tc.prefix + ".sent.directive").Value(); n != 1 {
					t.Errorf("%s.sent.directive = %d, want 1", tc.prefix, n)
				}
			})

			t.Run("duplicate", func(t *testing.T) {
				inner, setMetrics, clock, after, pump := tc.open(t)
				reg := telemetry.NewRegistry(func() time.Duration { return 0 })
				setMetrics(reg)
				ft := faults.New(inner, &faults.Plan{Seed: 1, Rules: []faults.Rule{
					{Name: "dup-all", Kind: faults.KindDuplicate},
				}}, clock, after)

				var got []msg.Message
				ft.Bind("/conf/sink", "conf", func(m msg.Message) { got = append(got, m) })
				_, directive := faultConfMsgs()
				if err := ft.Send("/conf/sink", directive); err != nil {
					t.Fatal(err)
				}
				pump()

				if len(got) != 2 {
					t.Fatalf("delivered %d copies, want 2", len(got))
				}
				checkDelivered(t, got)
				// Both copies crossed the wrapped transport and were
				// charged for: two sends, twice the bytes of one.
				if n := reg.Counter(tc.prefix + ".sent.directive").Value(); n != 2 {
					t.Errorf("%s.sent.directive = %d, want 2", tc.prefix, n)
				}
				bytes := reg.Counter(tc.prefix + ".bytes").Value()
				if bytes == 0 || bytes%2 != 0 {
					t.Errorf("%s.bytes = %d, want an even count covering both copies", tc.prefix, bytes)
				}
			})

			t.Run("delay", func(t *testing.T) {
				inner, setMetrics, clock, after, pump := tc.open(t)
				reg := telemetry.NewRegistry(func() time.Duration { return 0 })
				setMetrics(reg)
				ft := faults.New(inner, &faults.Plan{Seed: 1, Rules: []faults.Rule{
					{Name: "lag", Kind: faults.KindDelay, Delay: faults.Duration(5 * time.Millisecond)},
				}}, clock, after)

				var got []msg.Message
				ft.Bind("/conf/sink", "conf", func(m msg.Message) { got = append(got, m) })
				violation, _ := faultConfMsgs()
				if err := ft.Send("/conf/sink", violation); err != nil {
					t.Fatal(err)
				}
				pump()

				if len(got) != 1 {
					t.Fatalf("delivered %d messages after delay, want 1", len(got))
				}
				checkDelivered(t, got)
				if n := ft.Counts()[faults.KindDelay]; n != 1 {
					t.Errorf("delay count = %d, want 1", n)
				}
				if n := reg.Counter(tc.prefix + ".sent.violation").Value(); n != 1 {
					t.Errorf("%s.sent.violation = %d, want 1", tc.prefix, n)
				}
			})

			t.Run("reorder", func(t *testing.T) {
				inner, _, clock, after, pump := tc.open(t)
				ft := faults.New(inner, &faults.Plan{Seed: 1, Rules: []faults.Rule{
					{Name: "overtake", Kind: faults.KindReorder, Types: []string{"violation"}},
				}}, clock, after)

				var got []msg.Message
				ft.Bind("/conf/sink", "conf", func(m msg.Message) { got = append(got, m) })
				violation, directive := faultConfMsgs()
				if err := ft.Send("/conf/sink", violation); err != nil {
					t.Fatal(err) // held, not lost
				}
				if err := ft.Send("/conf/sink", directive); err != nil {
					t.Fatal(err) // overtakes and flushes the held one
				}
				pump()

				if len(got) != 2 {
					t.Fatalf("delivered %d messages, want both (reorder must not lose)", len(got))
				}
				checkDelivered(t, got)
				tag := func(m msg.Message) string {
					s, err := msg.TypeTag(m.Body)
					if err != nil {
						t.Fatal(err)
					}
					return s
				}
				if tag(got[0]) != "directive" || tag(got[1]) != "violation" {
					t.Errorf("delivery order = [%s %s], want the directive to overtake", tag(got[0]), tag(got[1]))
				}
			})
		})
	}
}
