package msg

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestBackoffDelay pins the pure retry schedule: exponential growth
// from Base, hard-capped, with attempt 0 (the initial try) free and
// jitter spreading each delay symmetrically around its nominal value.
func TestBackoffDelay(t *testing.T) {
	plain := Backoff{Base: 2 * time.Millisecond, Factor: 2, Cap: 50 * time.Millisecond, Attempts: 4}
	capped := Backoff{Base: 10 * time.Millisecond, Factor: 10, Cap: 25 * time.Millisecond, Attempts: 8}
	uncapped := Backoff{Base: time.Millisecond, Factor: 3, Attempts: 8}

	cases := []struct {
		name    string
		b       Backoff
		attempt int
		u       float64
		want    time.Duration
	}{
		{"initial try is free", plain, 0, 0.5, 0},
		{"negative attempt is free", plain, -3, 0.5, 0},
		{"first retry waits Base", plain, 1, 0, 2 * time.Millisecond},
		{"second retry doubles", plain, 2, 0, 4 * time.Millisecond},
		{"third retry doubles again", plain, 3, 0, 8 * time.Millisecond},
		{"growth stops at the cap", capped, 2, 0, 25 * time.Millisecond},
		{"stays at the cap forever", capped, 7, 0, 25 * time.Millisecond},
		{"base above cap is clamped", Backoff{Base: time.Second, Factor: 2, Cap: 30 * time.Millisecond}, 1, 0, 30 * time.Millisecond},
		{"zero cap means unbounded", uncapped, 4, 0, 27 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := tc.b.Delay(tc.attempt, tc.u); got != tc.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
}

// TestBackoffJitterBounds: with jitter J, the delay for a nominal value
// d must stay inside [d*(1-J/2), d*(1+J/2)] for every random sample,
// hitting the lower bound at u=0 and approaching the upper at u→1.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 8 * time.Millisecond, Factor: 2, Cap: time.Second, Attempts: 4, Jitter: 0.5}
	for attempt := 1; attempt <= 3; attempt++ {
		nominal := Backoff{Base: b.Base, Factor: b.Factor, Cap: b.Cap}.Delay(attempt, 0)
		lo := time.Duration(float64(nominal) * (1 - b.Jitter/2))
		hi := time.Duration(float64(nominal) * (1 + b.Jitter/2))
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
			got := b.Delay(attempt, u)
			if got < lo || got > hi {
				t.Errorf("attempt %d, u=%v: delay %v outside jitter bounds [%v, %v]", attempt, u, got, lo, hi)
			}
		}
		if got := b.Delay(attempt, 0); got != lo {
			t.Errorf("attempt %d: u=0 should pin the lower bound %v, got %v", attempt, lo, got)
		}
	}
}

// TestBackoffExhausted pins the give-up rule: Attempts counts total
// tries including the first, and a non-positive Attempts still allows
// exactly one try.
func TestBackoffExhausted(t *testing.T) {
	cases := []struct {
		name     string
		attempts int
		tries    int
		want     bool
	}{
		{"first try always allowed", 4, 0, false},
		{"mid-schedule", 4, 3, false},
		{"limit reached", 4, 4, true},
		{"past the limit", 4, 9, true},
		{"zero attempts means single try", 0, 1, true},
		{"zero attempts allows the first", 0, 0, false},
		{"negative attempts means single try", -2, 1, true},
	}
	for _, tc := range cases {
		b := Backoff{Attempts: tc.attempts}
		if got := b.Exhausted(tc.tries); got != tc.want {
			t.Errorf("%s: Exhausted(%d) with Attempts=%d = %v, want %v", tc.name, tc.tries, tc.attempts, got, tc.want)
		}
	}
}

// TestSendErrorClassification: only transient connection failures are
// retryable; routing and validation failures are permanent.
func TestSendErrorClassification(t *testing.T) {
	retryable := map[SendErrorKind]bool{
		ErrNoRoute:    false,
		ErrClosed:     false,
		ErrConnLost:   true,
		ErrDialFailed: true,
		ErrInvalid:    false,
	}
	for kind, want := range retryable {
		e := &SendError{To: "/x", Kind: kind}
		if got := e.Retryable(); got != want {
			t.Errorf("Retryable(%s) = %v, want %v", kind, got, want)
		}
	}

	cause := errors.New("connection refused")
	e := &SendError{To: "/host/addr", Kind: ErrDialFailed, Err: cause}
	if !errors.Is(e, cause) {
		t.Error("SendError does not unwrap to its cause")
	}
	if s := e.Error(); !strings.Contains(s, "/host/addr") || !strings.Contains(s, "dial_failed") || !strings.Contains(s, "connection refused") {
		t.Errorf("Error() = %q missing address, kind, or cause", s)
	}
	if s := (&SendError{To: "/x", Kind: ErrClosed}).Error(); !strings.Contains(s, "closed") {
		t.Errorf("Error() without cause = %q", s)
	}
}

// TestNetTransportRetriesThroughRestart: a send to a peer that is down
// fails with a typed retryable error and counts its attempts; once the
// peer returns on the same port the next send redials, succeeds, and
// the reconnect is counted.
func TestNetTransportRetriesThroughRestart(t *testing.T) {
	srv, err := NewNetTransport("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var got int
	srv.Bind("/srv/sink", "srv", func(Message) { got++ })
	addr := srv.Addr()

	cli, err := NewNetTransport("cli", "")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetRetryPolicy(Backoff{Base: 100 * time.Microsecond, Factor: 2, Cap: time.Millisecond, Attempts: 3, Jitter: 0.5})
	cli.Route("/srv/sink", addr)

	ok := Message{From: "/cli/src", Body: Ack{Ref: "r"}}
	if err := cli.Send("/srv/sink", ok); err != nil {
		t.Fatalf("send to live peer: %v", err)
	}

	// Peer dies and the established connection goes with it: the send
	// redials, retries Attempts times against the closed port, then
	// surfaces a typed, retryable error. (Severing the cached
	// connection makes the failure deterministic — a write into a
	// half-closed TCP buffer could otherwise "succeed".)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cli.SeverConns()
	err = cli.Send("/srv/sink", ok)
	if err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	var se *SendError
	if !errors.As(err, &se) {
		t.Fatalf("send to dead peer returned untyped error %T: %v", err, err)
	}
	if !se.Retryable() {
		t.Errorf("error kind %s not retryable — callers cannot ride out a restart", se.Kind)
	}
	retries, _, sendFailed := cli.Resilience()
	if retries != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", retries)
	}
	if sendFailed != 1 {
		t.Errorf("send_failed = %d, want 1", sendFailed)
	}

	// Peer restarts on the same port: the next send redials and is
	// counted as a reconnect.
	srv2, err := NewNetTransport("srv", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	delivered := make(chan struct{}, 1)
	srv2.Bind("/srv/sink", "srv", func(Message) {
		select {
		case delivered <- struct{}{}:
		default:
		}
	})
	if err := cli.Send("/srv/sink", ok); err != nil {
		t.Fatalf("send after peer restart: %v", err)
	}
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("message never reached the restarted peer")
	}
	if _, reconnects, _ := cli.Resilience(); reconnects == 0 {
		t.Error("redial of a previously-dialed peer not counted as a reconnect")
	}
}
