package msg

import "errors"

// Wire-format negotiation.
//
// A transport configured for WireBinary must not spray binary frames at
// a peer that only understands JSON lines, so the upgrade is negotiated
// per connection with a "hello" control frame:
//
//   - When a binary-capable node establishes a connection (dial or
//     accept), it sends one hello — always as a JSON line, so even a
//     JSON-only peer can parse it (old peers log-and-drop the unknown
//     type; nothing breaks).
//   - A node that receives a hello marks the connection's peer as
//     binary-capable and, if it is itself configured for binary,
//     replies with its own hello (at most one per connection).
//   - Data frames go out binary only once the peer's hello has been
//     seen; until then — and forever, against a peer that never sends
//     one — the connection stays on JSON. That is the negotiate-down
//     path: binary speaker → JSON listener degrades to JSON silently.
//
// Receivers never need negotiation: the binary magic byte cannot begin
// a JSON line, so every inbound frame self-describes its format.

// errHelloFrame is returned by the envelope decoder when the frame is
// the negotiation hello rather than a management message; transports
// intercept it instead of dispatching.
var errHelloFrame = errors.New("msg: wire-negotiation hello frame")

// helloFrame builds the capability announcement sent by host.
func helloFrame(host string) []byte {
	dst := append([]byte(nil), `{"from":`...)
	dst = appendJSONString(dst, host)
	return append(dst, `,"type":"hello","body":{"v":1}}`...)
}
