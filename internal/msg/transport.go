package msg

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softqos/internal/telemetry"
	"softqos/internal/telemetry/eventlog"
)

// Transport is the management-plane transport seam: what the manager
// stack needs to exchange messages, satisfied by both the in-simulation
// Bus and the live TCP NetTransport. Send must return an error when the
// destination is not reachable (unbound address, no route) so callers
// can detect dead managers.
type Transport interface {
	Send(to string, m Message) error
	Bind(addr, host string, h BusHandler)
	Unbind(addr string)
	Bound(addr string) bool
}

var (
	_ Transport = (*Bus)(nil)
	_ Transport = (*NetTransport)(nil)
)

// netMetrics holds the routed TCP transport's pre-resolved metric
// handles under "msg.net.*". The per-type tag set includes "nack", which
// only ever flows live (the sim's pre-registered "msg.bus.*" name set is
// unchanged, keeping determinism goldens stable).
type netMetrics struct {
	reg        *telemetry.Registry
	sent       *telemetry.Counter
	delivered  *telemetry.Counter
	dropped    *telemetry.Counter
	bytes      *telemetry.Counter
	retries    *telemetry.Counter
	reconnects *telemetry.Counter
	sendFailed *telemetry.Counter
	byType     map[string]*telemetry.Counter

	invalidOnce sync.Once
	invalid     *telemetry.Counter // lazy: registered on the first invalid drop
}

// droppedInvalid counts one validation drop, resolving the counter on
// first use so the metric only appears in registries that actually saw a
// malformed message.
func (m *netMetrics) droppedInvalid() {
	m.invalidOnce.Do(func() { m.invalid = m.reg.Counter("msg.net.dropped_invalid") })
	m.invalid.Inc()
}

func newNetMetrics(reg *telemetry.Registry) *netMetrics {
	tags := append(append([]string(nil), typeTags...), "nack", "heartbeat", "alarmbatch")
	m := &netMetrics{
		reg:        reg,
		sent:       reg.Counter("msg.net.sent"),
		delivered:  reg.Counter("msg.net.delivered"),
		dropped:    reg.Counter("msg.net.dropped"),
		bytes:      reg.Counter("msg.net.bytes"),
		retries:    reg.Counter("msg.net.retries"),
		reconnects: reg.Counter("msg.net.reconnects"),
		sendFailed: reg.Counter("msg.net.send_failed"),
		byType:     make(map[string]*telemetry.Counter, len(tags)),
	}
	for _, tag := range tags {
		m.byType[tag] = reg.Counter("msg.net.sent." + tag)
	}
	return m
}

// NetTransport is the live-mode Transport: one node of a distributed
// management session. Each process creates one NetTransport, binds its
// local components' management addresses, and sends to any address —
// local addresses are delivered in-process, remote ones travel as routed
// JSON-line envelopes over TCP connections that are dialed on demand and
// reused.
//
// Routing: a destination resolves, in order, to (1) a locally bound
// handler, (2) a connection learned from a previous inbound message with
// that From address (reply routing), (3) a static Route entry mapping
// the management address to a "host:port", or (4) the address itself
// when it looks like a "host:port". A node receiving a frame whose To
// address is not bound delivers it to its sole handler if it has exactly
// one (this lets a single-component node be addressed by its TCP
// address), otherwise drops it.
//
// All local handler invocations — whether from local sends or from any
// connection's read loop — are serialized on one dispatcher goroutine,
// so the managers run exactly as single-threaded as they do under the
// simulator and need no locking. Handlers may call Send freely (it only
// enqueues or writes, never blocks on dispatch).
type NetTransport struct {
	host string
	ln   net.Listener

	mu       sync.Mutex
	closed   bool
	handlers map[string]func(Message)
	routes   map[string]string // management address -> "host:port"
	learned  map[string]*Conn  // sender management address -> conn
	dialed   map[string]*Conn  // "host:port" -> conn
	conns    map[*Conn]struct{}
	wg       sync.WaitGroup

	dmu   sync.Mutex
	dcond *sync.Cond
	queue []func()
	ddone bool
	dexit chan struct{}

	everDialed map[string]struct{} // addrs connected at least once (for reconnect counting)

	sent           atomic.Uint64
	delivered      atomic.Uint64
	dropped        atomic.Uint64
	droppedInvalid atomic.Uint64
	retries        atomic.Uint64
	reconnects     atomic.Uint64
	sendFailed     atomic.Uint64

	logfFn  atomic.Pointer[func(string, ...any)]
	dropFn  atomic.Pointer[DropLogger]
	evlog   atomic.Pointer[eventlog.Logger]
	metrics atomic.Pointer[netMetrics]
	retryP  atomic.Pointer[Backoff]
	wire    atomic.Int32 // preferred WireFormat (negotiated per conn, see wire.go)
}

// SetWireFormat sets the node's preferred frame encoding. WireJSON (the
// default) keeps every frame a JSON line. WireBinary announces binary
// capability on each new connection and upgrades outbound data frames
// once the peer has announced too; peers that never do keep receiving
// JSON (see wire.go for the negotiation rules).
func (t *NetTransport) SetWireFormat(f WireFormat) { t.wire.Store(int32(f)) }

func (t *NetTransport) wireFormat() WireFormat { return WireFormat(t.wire.Load()) }

// sendHello announces binary capability on a connection, once.
func (t *NetTransport) sendHello(c *Conn) {
	if c.helloSent.Swap(true) {
		return
	}
	if _, err := c.sendFrame(helloFrame(t.host), WireJSON); err != nil {
		t.logf("msg: %s: wire hello failed: %v", t.host, err)
		t.evlog.Load().Event(eventlog.Warn, "msg", "wire_hello_failed",
			eventlog.Str("node", t.host), eventlog.Str("error", err.Error()))
	}
}

// NewNetTransport creates a live transport node named host. listen is
// the TCP listen address ("127.0.0.1:0" for an ephemeral port) or empty
// for a dial-only node (a pure client, e.g. an instrumented process that
// only talks to its agent and host manager).
func NewNetTransport(host, listen string) (*NetTransport, error) {
	t := &NetTransport{
		host:       host,
		handlers:   make(map[string]func(Message)),
		routes:     make(map[string]string),
		learned:    make(map[string]*Conn),
		dialed:     make(map[string]*Conn),
		conns:      make(map[*Conn]struct{}),
		everDialed: make(map[string]struct{}),
		dexit:      make(chan struct{}),
	}
	t.dcond = sync.NewCond(&t.dmu)
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return nil, fmt.Errorf("msg: listen %s: %w", listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	go t.dispatchLoop()
	return t, nil
}

// Addr returns the node's TCP listen address, or "" for dial-only nodes.
func (t *NetTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetMetrics attaches the transport to a metrics registry: counters for
// messages sent/delivered/dropped, wire bytes, and per-type message
// counts under "msg.net.*".
func (t *NetTransport) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		t.metrics.Store(nil)
		return
	}
	t.metrics.Store(newNetMetrics(reg))
}

// Stats returns messages sent, delivered to local handlers, and dropped.
func (t *NetTransport) Stats() (sent, delivered, dropped uint64) {
	return t.sent.Load(), t.delivered.Load(), t.dropped.Load()
}

// DroppedInvalid returns how many decoded messages failed Validate and
// were logged and dropped instead of dispatched.
func (t *NetTransport) DroppedInvalid() uint64 { return t.droppedInvalid.Load() }

// SetLogf routes the transport's textual diagnostics to fn. Without a
// hook the text is discarded: the transport never writes unstructured
// stderr — structured reporting goes through SetEventLog/SetDropLogger.
func (t *NetTransport) SetLogf(fn func(format string, args ...any)) {
	t.logfFn.Store(&fn)
}

// SetEventLog routes the transport's diagnostics (invalid-frame drops,
// hello failures, exhausted retries, reconnects) into the structured
// event log as component "msg" records. Pass nil to detach.
func (t *NetTransport) SetEventLog(lg *eventlog.Logger) {
	if lg == nil {
		t.evlog.Store(nil)
		return
	}
	t.evlog.Store(lg)
}

func (t *NetTransport) logf(format string, args ...any) {
	if p := t.logfFn.Load(); p != nil {
		(*p)(format, args...)
	}
}

// DropInfo describes one message the transport refused to dispatch: who
// was talking to whom, what kind of message it was, and why validation
// rejected it.
type DropInfo struct {
	Node string // transport host observing the drop
	From string // sender management address (may be empty on outbound)
	To   string // destination management address
	Kind string // envelope type tag, "?" when the body type is unknown
	Err  error  // the Validate error
}

// DropLogger receives every invalid-envelope drop. It runs on the
// transport's send or read path, so it must be cheap and must not call
// back into the transport.
type DropLogger func(DropInfo)

// SetDropLogger routes structured drop reports to fn. When set it
// replaces the event-log record (counters still increment); pass nil to
// restore event-log reporting.
func (t *NetTransport) SetDropLogger(fn DropLogger) {
	if fn == nil {
		t.dropFn.Store(nil)
		return
	}
	t.dropFn.Store(&fn)
}

// dropInvalid reports and counts a message that decoded but failed
// Validate: through the DropInfo hook when one is set, as a structured
// "msg"/"invalid_drop" event-log record otherwise. The legacy textual
// line only exists behind an explicit SetLogf hook.
func (t *NetTransport) dropInvalid(to string, m Message, err error) {
	t.droppedInvalid.Add(1)
	if nm := t.metrics.Load(); nm != nil {
		nm.droppedInvalid()
	}
	kind := "?"
	if tag, tagErr := typeTag(m.Body); tagErr == nil {
		kind = tag
	}
	if p := t.dropFn.Load(); p != nil {
		(*p)(DropInfo{Node: t.host, From: m.From, To: to, Kind: kind, Err: err})
		return
	}
	t.evlog.Load().EventCtx(m.Trace, eventlog.Warn, "msg", "invalid_drop",
		eventlog.Str("node", t.host), eventlog.Str("from", m.From),
		eventlog.Str("to", to), eventlog.Str("kind", kind),
		eventlog.Str("error", err.Error()))
	t.logf("msg: %s: dropping invalid %s message %s -> %s: %v", t.host, kind, m.From, to, err)
}

// Bind attaches a handler to a local management address. The host label
// is informational (the Transport seam shares the Bus signature).
// Rebinding replaces the handler.
func (t *NetTransport) Bind(addr, host string, h BusHandler) {
	t.mu.Lock()
	t.handlers[addr] = h
	t.mu.Unlock()
	_ = host
}

// Unbind removes a local address.
func (t *NetTransport) Unbind(addr string) {
	t.mu.Lock()
	delete(t.handlers, addr)
	t.mu.Unlock()
}

// Bound reports whether a local handler is bound at addr.
func (t *NetTransport) Bound(addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.handlers[addr]
	return ok
}

// Route statically maps a management address to the TCP address of the
// node hosting it (the live analogue of the simulator's address table).
func (t *NetTransport) Route(mgmtAddr, tcpAddr string) {
	t.mu.Lock()
	t.routes[mgmtAddr] = tcpAddr
	t.mu.Unlock()
}

// Do runs fn on the dispatcher goroutine, after any queued deliveries.
// It is how embedding code touches the (lock-free) managers safely.
func (t *NetTransport) Do(fn func()) {
	t.dispatch(fn)
}

// Sync runs fn on the dispatcher goroutine and waits for it to finish.
// It must not be called from inside a handler (it would deadlock).
func (t *NetTransport) Sync(fn func()) {
	done := make(chan struct{})
	t.dispatch(func() {
		defer close(done)
		fn()
	})
	<-done
}

// SetRetryPolicy overrides the transport's send retry schedule (the
// default is DefaultBackoff). A Backoff with Attempts 1 disables
// retries entirely.
func (t *NetTransport) SetRetryPolicy(b Backoff) {
	t.retryP.Store(&b)
}

func (t *NetTransport) retryPolicy() Backoff {
	if p := t.retryP.Load(); p != nil {
		return *p
	}
	return DefaultBackoff
}

// Resilience returns how many sends were retried, how many redials of a
// previously connected peer succeeded, and how many sends failed after
// the retry schedule was exhausted.
func (t *NetTransport) Resilience() (retries, reconnects, sendFailed uint64) {
	return t.retries.Load(), t.reconnects.Load(), t.sendFailed.Load()
}

// Send delivers m to a management address: in-process when the address
// is bound locally, over TCP otherwise (see NetTransport's routing
// order). Transient connection failures — the peer restarting, a conn
// dropped mid-send — are retried with jittered exponential backoff
// (SetRetryPolicy); the peer is redialed between tries. The returned
// error is a *SendError classifying the final failure: routing and
// validation errors return immediately without retrying.
func (t *NetTransport) Send(to string, m Message) error {
	if err := Validate(m); err != nil {
		t.dropInvalid(to, m, err)
		return &SendError{To: to, Kind: ErrInvalid, Err: err}
	}
	policy := t.retryPolicy()
	for try := 0; ; try++ {
		if try > 0 {
			t.retries.Add(1)
			if nm := t.metrics.Load(); nm != nil {
				nm.retries.Inc()
			}
			t.evlog.Load().EventCtx(m.Trace, eventlog.Debug, "msg", "send_retry",
				eventlog.Str("to", to), eventlog.Int("try", try))
			time.Sleep(policy.Delay(try, rand.Float64()))
		}
		err := t.trySend(to, m)
		if err == nil {
			return nil
		}
		var se *SendError
		if !errors.As(err, &se) || !se.Retryable() || policy.Exhausted(try+1) {
			t.sendFailed.Add(1)
			if nm := t.metrics.Load(); nm != nil {
				nm.sendFailed.Inc()
			}
			t.evlog.Load().EventCtx(m.Trace, eventlog.Warn, "msg", "send_failed",
				eventlog.Str("to", to), eventlog.Int("tries", try+1),
				eventlog.Str("error", err.Error()))
			return err
		}
	}
}

// trySend makes one delivery attempt. Connection failures forget the
// conn (so a retry redials) and come back as retryable *SendError.
func (t *NetTransport) trySend(to string, m Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return &SendError{To: to, Kind: ErrClosed}
	}
	if h, ok := t.handlers[to]; ok {
		t.mu.Unlock()
		t.countSent(m, true)
		t.dispatch(func() {
			t.delivered.Add(1)
			if nm := t.metrics.Load(); nm != nil {
				nm.delivered.Inc()
			}
			h(m)
		})
		return nil
	}
	c := t.learned[to]
	var dialAddr string
	if c == nil {
		tcpAddr, ok := t.routes[to]
		if !ok && looksLikeHostPort(to) {
			tcpAddr, ok = to, true
		}
		if !ok {
			t.mu.Unlock()
			return &SendError{To: to, Kind: ErrNoRoute,
				Err: fmt.Errorf("no handler or route for %q", to)}
		}
		if c = t.dialed[tcpAddr]; c == nil {
			dialAddr = tcpAddr
		}
	}
	t.mu.Unlock()

	if c == nil {
		nc, err := net.Dial("tcp", dialAddr)
		if err != nil {
			return &SendError{To: to, Kind: ErrDialFailed, Err: err}
		}
		c = NewConn(nc)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return &SendError{To: to, Kind: ErrClosed}
		}
		if prev, ok := t.dialed[dialAddr]; ok {
			// lost a dial race; use the established conn
			t.mu.Unlock()
			_ = c.Close()
			c = prev
		} else {
			if _, again := t.everDialed[dialAddr]; again {
				t.reconnects.Add(1)
				if nm := t.metrics.Load(); nm != nil {
					nm.reconnects.Inc()
				}
				t.evlog.Load().Event(eventlog.Info, "msg", "reconnect",
					eventlog.Str("node", t.host), eventlog.Str("peer", dialAddr))
			}
			t.everDialed[dialAddr] = struct{}{}
			t.dialed[dialAddr] = c
			t.conns[c] = struct{}{}
			t.wg.Add(1)
			go t.readLoop(c)
			t.mu.Unlock()
			if t.wireFormat() == WireBinary {
				t.sendHello(c)
			}
		}
	}

	// Binary only after the peer announced it understands binary;
	// otherwise (including always, for a WireJSON node) JSON lines.
	format := WireJSON
	if t.wireFormat() == WireBinary && c.peerBin.Load() {
		format = WireBinary
	}
	buf := getWireBuf()
	data, err := appendWire(buf[:0], format, to, m)
	if err != nil {
		putWireBuf(buf)
		return err
	}
	wire, err := c.sendFrame(data, format)
	putWireBuf(data)
	if err != nil {
		t.forgetConn(c)
		return &SendError{To: to, Kind: ErrConnLost, Err: err}
	}
	t.countSent(m, false)
	if nm := t.metrics.Load(); nm != nil {
		nm.bytes.Add(uint64(wire))
	}
	return nil
}

// SeverConns abruptly closes every established connection (both dialed
// and accepted) without shutting the transport down, returning how many
// it closed. Fault injection uses it to simulate a network break; the
// next Send redials.
func (t *NetTransport) SeverConns() int {
	t.mu.Lock()
	conns := make([]*Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		t.forgetConn(c)
	}
	return len(conns)
}

func (t *NetTransport) countSent(m Message, local bool) {
	t.sent.Add(1)
	nm := t.metrics.Load()
	if nm == nil {
		return
	}
	nm.sent.Inc()
	if tag, err := typeTag(m.Body); err == nil {
		if c, ok := nm.byType[tag]; ok {
			c.Inc()
		}
	}
	if local {
		// parity with Bus: local deliveries still account wire bytes
		// (in the node's preferred format, through a pooled buffer)
		buf := getWireBuf()
		if data, err := appendWire(buf[:0], t.wireFormat(), "", m); err == nil {
			nm.bytes.Add(uint64(len(data)))
			putWireBuf(data)
		} else {
			putWireBuf(buf)
		}
	}
}

func looksLikeHostPort(addr string) bool {
	return !strings.HasPrefix(addr, "/") && strings.Contains(addr, ":")
}

func (t *NetTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := NewConn(nc)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.conns[c] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		if t.wireFormat() == WireBinary {
			t.sendHello(c)
		}
		go t.readLoop(c)
	}
}

func (t *NetTransport) readLoop(c *Conn) {
	defer t.wg.Done()
	defer t.forgetConn(c)
	for {
		frame, bin, err := c.recvFrame()
		if err != nil {
			return
		}
		var to string
		var m Message
		if bin {
			// A peer that speaks binary to us has negotiated already;
			// note the capability in case we missed (or raced) its hello.
			c.peerBin.Store(true)
			to, m, err = unmarshalBinaryPayload(frame.data)
		} else {
			to, m, err = unmarshalRouted(frame.data)
		}
		if err != nil {
			if errors.Is(err, errHelloFrame) {
				c.peerBin.Store(true)
				if t.wireFormat() == WireBinary {
					t.sendHello(c)
				}
				continue
			}
			t.dropped.Add(1)
			if nm := t.metrics.Load(); nm != nil {
				nm.dropped.Inc()
			}
			continue
		}
		// The frame parsed but may still be semantically malformed (a
		// violation without a pid, a directive without an action): log
		// and drop it with a counter rather than silently skipping or
		// handing a handler a message it would misbehave on.
		if err := Validate(m); err != nil {
			t.dropInvalid(to, m, err)
			continue
		}
		t.mu.Lock()
		if m.From != "" {
			t.learned[m.From] = c
		}
		h := t.handlers[to]
		if h == nil && len(t.handlers) == 1 {
			for _, only := range t.handlers {
				h = only
			}
		}
		t.mu.Unlock()
		if h == nil {
			t.dropped.Add(1)
			if nm := t.metrics.Load(); nm != nil {
				nm.dropped.Inc()
			}
			continue
		}
		t.dispatch(func() {
			t.delivered.Add(1)
			if nm := t.metrics.Load(); nm != nil {
				nm.delivered.Inc()
			}
			h(m)
		})
	}
}

// forgetConn drops a dead connection from every table and closes it.
func (t *NetTransport) forgetConn(c *Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	for addr, lc := range t.learned {
		if lc == c {
			delete(t.learned, addr)
		}
	}
	for addr, dc := range t.dialed {
		if dc == c {
			delete(t.dialed, addr)
		}
	}
	t.mu.Unlock()
	_ = c.Close()
}

func (t *NetTransport) dispatch(fn func()) {
	t.dmu.Lock()
	if t.ddone {
		t.dmu.Unlock()
		return
	}
	t.queue = append(t.queue, fn)
	t.dcond.Signal()
	t.dmu.Unlock()
}

func (t *NetTransport) dispatchLoop() {
	defer close(t.dexit)
	for {
		t.dmu.Lock()
		for len(t.queue) == 0 && !t.ddone {
			t.dcond.Wait()
		}
		if len(t.queue) == 0 {
			t.dmu.Unlock()
			return
		}
		fn := t.queue[0]
		t.queue = t.queue[1:]
		t.dmu.Unlock()
		fn()
	}
}

// Close shuts the node down: stops accepting, closes every connection,
// waits for read loops, then drains and stops the dispatcher.
func (t *NetTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	var err error
	if t.ln != nil {
		err = t.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	t.dmu.Lock()
	t.ddone = true
	t.dcond.Signal()
	t.dmu.Unlock()
	<-t.dexit
	return err
}
