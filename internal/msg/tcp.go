package msg

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"softqos/internal/telemetry"
)

// tcpMetrics holds the TCP transport's pre-resolved metric handles,
// shared by every connection attached to the same registry.
type tcpMetrics struct {
	sent      *telemetry.Counter
	received  *telemetry.Counter
	sentBytes *telemetry.Counter
	recvBytes *telemetry.Counter
	byType    map[string]*telemetry.Counter
}

func newTCPMetrics(reg *telemetry.Registry) *tcpMetrics {
	m := &tcpMetrics{
		sent:      reg.Counter("msg.tcp.sent"),
		received:  reg.Counter("msg.tcp.received"),
		sentBytes: reg.Counter("msg.tcp.sent_bytes"),
		recvBytes: reg.Counter("msg.tcp.recv_bytes"),
		byType:    make(map[string]*telemetry.Counter, len(typeTags)),
	}
	for _, tag := range typeTags {
		m.byType[tag] = reg.Counter("msg.tcp.sent." + tag)
	}
	return m
}

// Conn is a JSON-lines message connection over a net.Conn — the live-mode
// analogue of the prototype's management sockets.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	mu sync.Mutex // serializes writes
	w  *bufio.Writer

	metrics atomic.Pointer[tcpMetrics]
}

// SetMetrics attaches the connection to a metrics registry (counters
// under "msg.tcp.*"). Safe to call concurrently with Send/Recv.
func (c *Conn) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		c.metrics.Store(nil)
		return
	}
	c.metrics.Store(newTCPMetrics(reg))
}

// NewConn wraps an established network connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// Dial connects to a message server at addr ("host:port").
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msg: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// Send writes one message as a JSON line and flushes it.
func (c *Conn) Send(m Message) error {
	data, err := Marshal(m)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if tm := c.metrics.Load(); tm != nil {
		tm.sent.Inc()
		tm.sentBytes.Add(uint64(len(data) + 1))
		if tag, err := typeTag(m.Body); err == nil {
			if ctr, ok := tm.byType[tag]; ok {
				ctr.Inc()
			}
		}
	}
	return nil
}

// Recv blocks for the next message.
func (c *Conn) Recv() (Message, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Message{}, err
	}
	if tm := c.metrics.Load(); tm != nil {
		tm.received.Inc()
		tm.recvBytes.Add(uint64(len(line)))
	}
	return Unmarshal(line)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Server accepts message connections and dispatches inbound messages to a
// handler. The handler may use the supplied connection to reply.
type Server struct {
	ln      net.Listener
	handler func(*Conn, Message)
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[*Conn]struct{}
	tm     *tcpMetrics
}

// SetMetrics attaches the server to a metrics registry: every current and
// future accepted connection records under "msg.tcp.*".
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	var tm *tcpMetrics
	if reg != nil {
		tm = newTCPMetrics(reg)
	}
	s.mu.Lock()
	s.tm = tm
	for c := range s.conns {
		c.metrics.Store(tm)
	}
	s.mu.Unlock()
}

// Serve starts a message server on addr (use "127.0.0.1:0" for an
// ephemeral port) dispatching each inbound message to handler, which runs
// on the connection's reader goroutine.
func Serve(addr string, handler func(*Conn, Message)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msg: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[*Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns[c] = struct{}{}
		c.metrics.Store(s.tm)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(c)
	}
}

func (s *Server) readLoop(c *Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
	}()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		s.handler(c, m)
	}
}

// Close stops accepting, closes all connections and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}
