package msg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"softqos/internal/telemetry"
)

// tcpMetrics holds the TCP transport's pre-resolved metric handles,
// shared by every connection attached to the same registry.
type tcpMetrics struct {
	sent      *telemetry.Counter
	received  *telemetry.Counter
	sentBytes *telemetry.Counter
	recvBytes *telemetry.Counter
	byType    map[string]*telemetry.Counter
}

func newTCPMetrics(reg *telemetry.Registry) *tcpMetrics {
	m := &tcpMetrics{
		sent:      reg.Counter("msg.tcp.sent"),
		received:  reg.Counter("msg.tcp.received"),
		sentBytes: reg.Counter("msg.tcp.sent_bytes"),
		recvBytes: reg.Counter("msg.tcp.recv_bytes"),
		byType:    make(map[string]*telemetry.Counter, len(typeTags)),
	}
	for _, tag := range typeTags {
		m.byType[tag] = reg.Counter("msg.tcp.sent." + tag)
	}
	return m
}

// Conn is a message connection over a net.Conn — the live-mode analogue
// of the prototype's management sockets. Outbound frames use the
// configured WireFormat (JSON lines by default); inbound frames are
// format-sniffed per frame, so a connection can carry both formats (as
// it does while wire negotiation is in flight).
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	mu sync.Mutex // serializes writes
	w  *bufio.Writer

	rbuf []byte // reader-goroutine scratch for binary payloads

	wfmt      atomic.Int32 // WireFormat for outbound frames
	peerBin   atomic.Bool  // peer announced binary capability (hello seen)
	helloSent atomic.Bool  // we announced ours on this conn

	metrics atomic.Pointer[tcpMetrics]
}

// SetWireFormat selects the outbound frame encoding for this
// point-to-point connection. Both ends of a Conn are wired by the same
// embedding code, so there is no negotiation here — NetTransport, which
// talks to arbitrary peers, negotiates before upgrading (see wire.go).
func (c *Conn) SetWireFormat(f WireFormat) { c.wfmt.Store(int32(f)) }

func (c *Conn) wireFormat() WireFormat { return WireFormat(c.wfmt.Load()) }

// SetMetrics attaches the connection to a metrics registry (counters
// under "msg.tcp.*"). Safe to call concurrently with Send/Recv.
func (c *Conn) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		c.metrics.Store(nil)
		return
	}
	c.metrics.Store(newTCPMetrics(reg))
}

// NewConn wraps an established network connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// Dial connects to a message server at addr ("host:port").
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msg: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// Send writes one message in the connection's wire format and flushes
// it. The frame is encoded into a pooled buffer, so the steady-state
// send path allocates only the body's JSON marshal (nothing at all on
// the binary path).
func (c *Conn) Send(m Message) error {
	buf := getWireBuf()
	data, err := appendWire(buf[:0], c.wireFormat(), "", m)
	if err != nil {
		putWireBuf(buf)
		return err
	}
	wire, err := c.sendFrame(data, c.wireFormat())
	putWireBuf(data)
	if err != nil {
		return err
	}
	if tm := c.metrics.Load(); tm != nil {
		tm.sent.Inc()
		tm.sentBytes.Add(uint64(wire))
		if tag, err := typeTag(m.Body); err == nil {
			if ctr, ok := tm.byType[tag]; ok {
				ctr.Inc()
			}
		}
	}
	return nil
}

// Recv blocks for the next message, sniffing the frame format.
func (c *Conn) Recv() (Message, error) {
	frame, bin, err := c.recvFrame()
	if err != nil {
		return Message{}, err
	}
	if tm := c.metrics.Load(); tm != nil {
		tm.received.Inc()
		tm.recvBytes.Add(uint64(frame.wire))
	}
	if bin {
		_, m, err := unmarshalBinaryPayload(frame.data)
		return m, err
	}
	return Unmarshal(frame.data)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// wireFrame is one frame read off the stream: the decodable bytes (a
// JSON line, or a binary payload) plus the total wire bytes consumed
// including framing overhead (for byte accounting).
type wireFrame struct {
	data []byte
	wire int
}

// sendFrame writes one pre-encoded frame and flushes it, returning the
// bytes put on the wire (JSON lines cost one extra newline byte).
func (c *Conn) sendFrame(data []byte, f WireFormat) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(data); err != nil {
		return 0, err
	}
	if f == WireJSON {
		if err := c.w.WriteByte('\n'); err != nil {
			return 0, err
		}
		if err := c.w.Flush(); err != nil {
			return 0, err
		}
		return len(data) + 1, nil
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	return len(data), nil
}

// recvFrame blocks for the next frame of either format, sniffing the
// first byte: the binary magic can never begin a JSON line. Binary
// payloads are read into a per-connection scratch buffer reused across
// frames (the decoder copies everything it keeps), so the steady-state
// binary receive path does not allocate per frame.
func (c *Conn) recvFrame() (wireFrame, bool, error) {
	first, err := c.r.Peek(1)
	if err != nil {
		return wireFrame{}, false, err
	}
	if first[0] != binMagic {
		line, err := c.r.ReadBytes('\n')
		if err != nil {
			return wireFrame{}, false, err
		}
		return wireFrame{data: line, wire: len(line)}, false, nil
	}
	if _, err := c.r.Discard(1); err != nil { // magic
		return wireFrame{}, false, err
	}
	version, err := c.r.ReadByte()
	if err != nil {
		return wireFrame{}, false, err
	}
	if version != binVersion {
		// Cannot know the unknown layout's length, so the stream is
		// unrecoverable: surface the typed error and let the caller
		// drop the connection.
		return wireFrame{}, false, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	n, err := binary.ReadUvarint(c.r)
	if err != nil {
		return wireFrame{}, false, err
	}
	if n > MaxFrameBytes {
		return wireFrame{}, false, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	header := 2 + uvarintLen(n)
	if uint64(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return wireFrame{}, false, err
	}
	return wireFrame{data: buf, wire: header + int(n)}, true, nil
}

// uvarintLen returns how many bytes binary.AppendUvarint uses for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Server accepts message connections and dispatches inbound messages to a
// handler. The handler may use the supplied connection to reply.
type Server struct {
	ln      net.Listener
	handler func(*Conn, Message)
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[*Conn]struct{}
	tm     *tcpMetrics
}

// SetMetrics attaches the server to a metrics registry: every current and
// future accepted connection records under "msg.tcp.*".
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	var tm *tcpMetrics
	if reg != nil {
		tm = newTCPMetrics(reg)
	}
	s.mu.Lock()
	s.tm = tm
	for c := range s.conns {
		c.metrics.Store(tm)
	}
	s.mu.Unlock()
}

// Serve starts a message server on addr (use "127.0.0.1:0" for an
// ephemeral port) dispatching each inbound message to handler, which runs
// on the connection's reader goroutine.
func Serve(addr string, handler func(*Conn, Message)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msg: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[*Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns[c] = struct{}{}
		c.metrics.Store(s.tm)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(c)
	}
}

func (s *Server) readLoop(c *Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
	}()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		s.handler(c, m)
	}
}

// Close stops accepting, closes all connections and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}
