package msg

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"softqos/internal/sim"
)

func TestMarshalRoundTripAllTypes(t *testing.T) {
	id := Identity{Host: "client-host", PID: 1234, Executable: "mpeg_play",
		Application: "VideoApplication", UserRole: "physician"}
	bodies := []any{
		Register{ID: id, Sensors: []string{"fps_sensor", "jitter_sensor"}},
		PolicySet{ID: id, Policies: []PolicySpec{{
			Name:       "NotifyQoSViolation",
			Connective: "and",
			Conditions: []CondSpec{
				{Attribute: "frame_rate", Sensor: "fps_sensor", Op: ">", Value: 23},
				{Attribute: "frame_rate", Sensor: "fps_sensor", Op: "<", Value: 27},
			},
			Actions: []ActionSpec{{Target: "fps_sensor", Op: "read", Args: []string{"frame_rate"}}},
		}}},
		Violation{ID: id, Policy: "NotifyQoSViolation",
			Readings: map[string]float64{"frame_rate": 14.5, "buffer_size": 12}},
		Query{From: "/domain", Keys: []string{"cpu_load", "mem_usage"}, Ref: "q1"},
		Report{Host: "server-host", Values: map[string]float64{"cpu_load": 9.7}, Ref: "q1"},
		Alarm{ID: id, Policy: "NotifyQoSViolation", Suspect: "remote",
			Readings: map[string]float64{"buffer_size": 0}},
		Directive{From: "/domain", Action: "boost_cpu", Target: "mpeg_serve", Amount: 10},
		Ack{Ref: "d1", OK: true},
	}
	for _, body := range bodies {
		in := Message{From: "/test/sender", Body: body}
		data, err := Marshal(in)
		if err != nil {
			t.Fatalf("marshal %T: %v", body, err)
		}
		out, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", body, err)
		}
		if out.From != in.From {
			t.Errorf("%T: from = %q", body, out.From)
		}
		// Unmarshal yields a pointer to the concrete type.
		got := reflect.ValueOf(out.Body).Elem().Interface()
		if !reflect.DeepEqual(got, body) {
			t.Errorf("%T round trip:\n got %+v\nwant %+v", body, got, body)
		}
	}
}

func TestMarshalUnknownTypeFails(t *testing.T) {
	if _, err := Marshal(Message{Body: 42}); err == nil {
		t.Fatal("marshalling unknown body type succeeded")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"type":"nope","body":{}}`,
		`{"type":"register","body":"not-an-object"}`,
	} {
		if _, err := Unmarshal([]byte(bad)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", bad)
		}
	}
}

func TestIdentityAddress(t *testing.T) {
	id := Identity{Host: "h1", PID: 42, Executable: "exe", Application: "App"}
	if got := id.Address(); got != "/h1/App/exe/42" {
		t.Errorf("Address = %q", got)
	}
}

func TestBusLocalVsRemoteLatency(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s, 100*time.Microsecond, 5*time.Millisecond)
	var localAt, remoteAt sim.Time
	b.Bind("/h1/coord", "h1", func(Message) {})
	b.Bind("/h1/mgr", "h1", func(Message) { localAt = s.Now() })
	b.Bind("/h2/mgr", "h2", func(Message) { remoteAt = s.Now() })

	from := Message{From: "/h1/coord", Body: Ack{Ref: "x", OK: true}}
	if err := b.Send("/h1/mgr", from); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("/h2/mgr", from); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if localAt != sim.At(100*time.Microsecond) {
		t.Errorf("local delivery at %v, want 100µs", localAt)
	}
	if remoteAt != sim.At(5*time.Millisecond) {
		t.Errorf("remote delivery at %v, want 5ms", remoteAt)
	}
}

func TestBusSendToUnboundFails(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s, time.Microsecond, time.Millisecond)
	if err := b.Send("/nobody", Message{Body: Ack{}}); err == nil {
		t.Fatal("send to unbound address succeeded")
	}
}

func TestBusUnbindDropsInFlight(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s, time.Millisecond, time.Millisecond)
	delivered := false
	b.Bind("/mgr", "h", func(Message) { delivered = true })
	if err := b.Send("/mgr", Message{From: "/x", Body: Ack{}}); err != nil {
		t.Fatal(err)
	}
	b.Unbind("/mgr")
	s.Run()
	if delivered {
		t.Fatal("message delivered to unbound handler")
	}
	if b.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", b.Dropped)
	}
}

func TestBusRebindReplacesHandler(t *testing.T) {
	s := sim.New(1)
	b := NewBus(s, time.Millisecond, time.Millisecond)
	got := ""
	b.Bind("/mgr", "h", func(Message) { got = "old" })
	b.Bind("/mgr", "h", func(Message) { got = "new" })
	_ = b.Send("/mgr", Message{From: "/x", Body: Ack{}})
	s.Run()
	if got != "new" {
		t.Errorf("handler = %q, want new", got)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	echo := func(c *Conn, m Message) {
		if q, ok := m.Body.(*Query); ok {
			_ = c.Send(Message{From: "/server", Body: Report{
				Host: "server-host", Values: map[string]float64{"cpu_load": 3.5}, Ref: q.Ref}})
		}
	}
	srv, err := Serve("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(Message{From: "/client", Body: Query{Keys: []string{"cpu_load"}, Ref: "r7"}}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := reply.Body.(*Report)
	if !ok {
		t.Fatalf("reply body %T", reply.Body)
	}
	if rep.Ref != "r7" || rep.Values["cpu_load"] != 3.5 {
		t.Errorf("reply = %+v", rep)
	}
}

func TestTCPMultipleMessagesOneConn(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(c *Conn, m Message) {
		_ = c.Send(m) // echo verbatim
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		ref := string(rune('a' + i%26))
		if err := c.Send(Message{From: "/c", Body: Ack{Ref: ref, OK: true}}); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Body.(*Ack).Ref != ref {
			t.Fatalf("echo %d: got %q want %q", i, got.Body.(*Ack).Ref, ref)
		}
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(c *Conn, m Message) { _ = c.Send(m) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		ref := string(rune('A' + i))
		go func() {
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if err := c.Send(Message{From: "/c", Body: Ack{Ref: ref, OK: true}}); err != nil {
					errs <- err
					return
				}
				got, err := c.Recv()
				if err != nil {
					errs <- err
					return
				}
				if got.Body.(*Ack).Ref != ref {
					errs <- fmt.Errorf("cross-talk: got %q want %q", got.Body.(*Ack).Ref, ref)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(*Conn, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	_ = srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client Recv not unblocked by server close")
	}
}
