package msg

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"softqos/internal/telemetry"
)

// codecCorpus is one message of every type with awkward field contents:
// empty strings, unicode, JSON-escaping hazards, zero and negative
// numbers, NaN-adjacent floats are excluded (JSON cannot carry them).
func codecCorpus() []Message {
	id := Identity{Host: "h-1", PID: 4321, Executable: "mpeg_play",
		Application: "VideoApplication", UserRole: "viewer"}
	return []Message{
		{From: "/h/app/x/1", Body: Register{ID: id, Sensors: []string{"fps_sensor"}}},
		{From: "", Body: Register{}},
		{From: "/mgmt/agent", Body: PolicySet{ID: id, Policies: []PolicySpec{{
			Name: "P", Connective: "and",
			Conditions: []CondSpec{{Attribute: "frame_rate", Sensor: "s", Op: ">=", Value: 24}},
			Actions:    []ActionSpec{{Target: "s", Op: "read", Args: []string{"frame_rate"}}},
		}, {Name: "Q", Connective: "or"}}}},
		{From: "/h/app/x/1", Body: Violation{ID: id, Policy: "P",
			Readings: map[string]float64{"frame_rate": 14.5, "z": -0.25, "a": 0}, Overshoot: true}},
		{From: "/h/app/x/1", Trace: telemetry.TraceContext{TraceID: "/h/app/x/1#7", Span: 3},
			Body: Violation{ID: id, Policy: "P"}},
		{From: "/mgmt/dm", Body: Query{From: "/mgmt/dm", Keys: []string{"cpu_load", "proc_cpu:42"}, Ref: "q1"}},
		{From: "/h/hm", Body: Report{Host: "h", Values: map[string]float64{"cpu_load": 3.5}, Ref: "q1"}},
		{From: "/h/hm", Body: Alarm{ID: id, Policy: "P", Suspect: "network",
			Readings: map[string]float64{"frame_rate": 10}}},
		{From: "/mgmt/dm", Body: Directive{From: "/mgmt/dm", Action: "boost_cpu", Target: "mpeg_serv", Amount: -2.5}},
		{From: "/h/hm", Body: Ack{Ref: "boost_cpu", OK: true}},
		{From: "/h/hm", Body: Ack{Ref: "x", OK: false, Err: "no such process"}},
		{From: "/mgmt/agent", Body: Nack{ID: id, Ref: "register", Reason: "repository \"down\" <unavailable> & gone"}},
		{From: "/h/app/x/1", Body: Heartbeat{ID: id, Seq: 18446744073709551615}},
		{From: "/h/über/x/1", Body: Ack{Ref: "ünïcode\n\ttab"}},
		{From: "/mgmt/dm-0", Body: AlarmBatch{Tier: "domain",
			Alarms: []BatchedAlarm{
				{Alarm: Alarm{ID: id, Policy: "P", Suspect: "network",
					Readings: map[string]float64{"cpu_load": 3.5, "frame_rate": 10}},
					Count: 4, Severity: 2},
				{Alarm: Alarm{ID: id, Policy: "Q"}, Count: 1},
			},
			Summary: map[string]float64{"domain_saturation": 0.125, "hosts": 64}}},
		{From: "/mgmt/dm-1", Body: AlarmBatch{Tier: "domain",
			Summary: map[string]float64{"domain_saturation": 0}}},
		{From: "/h/hm-3", Trace: telemetry.TraceContext{TraceID: "/h/app/x/1#9", Span: 2},
			Body: TelemetrySummary{Tier: "host", Source: "/h/hm-3", Seq: 12, Hosts: 1,
				Counters: map[string]float64{"fleet.alarms_raised": 3, "ünïcode": -0.5},
				Maxima:   map[string]float64{"fleet.cpu_load_max": 7.25},
				Sketches: []telemetry.NamedSketchSnapshot{
					{Name: "fleet.load", Sketch: telemetry.SketchSnapshot{
						Count: 7, Sum: 21.5, Min: 0, Max: 9.5, Zero: 2,
						Base: -3, Counts: []uint64{1, 0, 3, 1}}},
					{Name: "fleet.detect_adapt_ns", Sketch: telemetry.SketchSnapshot{
						Count: 1, Sum: 5e6, Min: 5e6, Max: 5e6,
						Base: 317, Counts: []uint64{1}}},
				}}},
		{From: "/mgmt/dm-0", Body: TelemetrySummary{Tier: "domain", Source: "/mgmt/dm-0", Seq: 1}},
		{From: "/mgmt/repo", Body: PolicyDelta{Generation: 7, Prev: 6,
			Executable: "mpeg_play", Scope: "canary",
			Hosts: []string{"h-0", "h-3"},
			Policies: []PolicySpec{{
				Name: "P", Connective: "and",
				Conditions: []CondSpec{{Attribute: "frame_rate", Sensor: "s", Op: ">=", Value: 24}},
				Actions:    []ActionSpec{{Target: "s", Op: "read", Args: []string{"frame_rate"}}},
			}},
			Reason: "canary start <g7> \"bake\""}},
		{From: "/mgmt/repo", Trace: telemetry.TraceContext{TraceID: "/mgmt/repo#4", Span: 1},
			Body: PolicyDelta{Generation: 8, Prev: 7, Executable: "mpeg_play",
				Scope: "rollback", Reason: "fast-burn breach"}},
		{From: "/mgmt/repo", Body: PolicyDelta{Generation: 18446744073709551615,
			Prev: 18446744073709551614, Executable: "ünïcode", Scope: "fleet"}},
	}
}

// oldEnvelopeMarshal is the pre-fast-path encoder (body into a
// RawMessage, then a second reflection marshal of the envelope struct),
// kept here as the reference the hand-built encoder must match.
func oldEnvelopeMarshal(to string, m Message) ([]byte, error) {
	tag, err := typeTag(m.Body)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(m.Body)
	if err != nil {
		return nil, err
	}
	env := envelope{From: m.From, To: to, Type: tag, Body: raw}
	if m.Trace.Valid() {
		tc := m.Trace
		env.Trace = &tc
	}
	return json.Marshal(env)
}

// TestJSONFastPathByteIdentity pins the hand-built JSON envelope to the
// reflection-based encoding it replaced. The determinism goldens pin
// msg.bus.bytes, so this identity is what keeps them byte-stable.
func TestJSONFastPathByteIdentity(t *testing.T) {
	for i, m := range codecCorpus() {
		for _, to := range []string{"", "/h/QoSHostManager", "weird <to> & \"addr\""} {
			want, err := oldEnvelopeMarshal(to, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := appendJSONFrame(nil, to, m)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("message %d to=%q:\nfast path: %s\nreference: %s", i, to, got, want)
			}
		}
	}
}

// TestBinaryRoundTrip: every corpus message survives the binary codec
// with its routing address, trace context and body intact.
func TestBinaryRoundTrip(t *testing.T) {
	for i, m := range codecCorpus() {
		data, err := MarshalWire(WireBinary, "/dest/addr", m)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		to, got, err := UnmarshalWire(data)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if to != "/dest/addr" {
			t.Errorf("message %d: to = %q", i, to)
		}
		assertSameMessage(t, i, m, got)

		// And the JSON format through the same entry points.
		jdata, err := MarshalWire(WireJSON, "/dest/addr", m)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		jto, jgot, err := UnmarshalWire(jdata)
		if err != nil {
			t.Fatalf("message %d json: %v", i, err)
		}
		if jto != "/dest/addr" {
			t.Errorf("message %d json: to = %q", i, jto)
		}
		assertSameMessage(t, i, m, jgot)
	}
}

// assertSameMessage compares a decoded message against the original.
// Decoders return pointer bodies and normalize empty maps/slices to
// nil, exactly as the JSON decoder always has, so the comparison
// normalizes the original the same way via a JSON round-trip of itself.
func assertSameMessage(t *testing.T, i int, want, got Message) {
	t.Helper()
	if got.From != want.From {
		t.Errorf("message %d: from = %q, want %q", i, got.From, want.From)
	}
	if got.Trace != want.Trace {
		t.Errorf("message %d: trace = %+v, want %+v", i, got.Trace, want.Trace)
	}
	wantTag, _ := typeTag(want.Body)
	ref, err := Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Unmarshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotTag, err := typeTag(got.Body)
	if err != nil {
		t.Fatalf("message %d: %v", i, err)
	}
	if gotTag != wantTag {
		t.Fatalf("message %d: type %q, want %q", i, gotTag, wantTag)
	}
	if !reflect.DeepEqual(got.Body, norm.Body) {
		t.Errorf("message %d: body = %#v, want %#v", i, got.Body, norm.Body)
	}
}

// TestBinaryFrameErrors: malformed frames come back as the documented
// typed errors, never panics, never silent success.
func TestBinaryFrameErrors(t *testing.T) {
	good, err := MarshalWire(WireBinary, "/d", Message{From: "/s", Body: Ack{Ref: "r", OK: true}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty-is-json", []byte{}, nil}, // falls through to JSON decode, which errors generically
		{"magic-only", []byte{binMagic}, ErrTruncated},
		{"bad-version", []byte{binMagic, 99, 1, kindAck}, ErrBadVersion},
		{"no-length", []byte{binMagic, binVersion}, ErrTruncated},
		{"oversized-claim", append([]byte{binMagic, binVersion}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), ErrFrameTooBig},
		{"truncated-payload", good[:len(good)-3], ErrTruncated},
		{"trailing-bytes", append(append([]byte(nil), good...), 0xAB), ErrTrailingBytes},
		{"bad-kind", []byte{binMagic, binVersion, 4, 77, 0, 0, 0}, ErrBadKind},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := UnmarshalWire(tc.data)
			if err == nil {
				t.Fatal("malformed frame decoded without error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestBinaryTruncationSweep: every prefix of a valid frame errors
// cleanly (the streaming reader depends on truncation being loud).
func TestBinaryTruncationSweep(t *testing.T) {
	for i, m := range codecCorpus() {
		data, err := MarshalWire(WireBinary, "/dest", m)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(data); n++ {
			if _, _, err := UnmarshalWire(data[:n]); err == nil {
				t.Fatalf("message %d: %d-byte prefix of %d decoded without error", i, n, len(data))
			}
		}
	}
}

// TestBinaryEncodingDeterministic: equal messages (including map-heavy
// ones) encode to equal bytes, so byte accounting and goldens are a
// pure function of traffic.
func TestBinaryEncodingDeterministic(t *testing.T) {
	m := Message{From: "/s", Body: Report{Host: "h", Ref: "r",
		Values: map[string]float64{"c": 3, "a": 1, "b": 2, "e": 5, "d": 4}}}
	first, err := MarshalWire(WireBinary, "/d", m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		again, err := MarshalWire(WireBinary, "/d", m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("iteration %d: encoding varied:\n%x\n%x", i, first, again)
		}
	}
}

// TestHelloFrame: the negotiation frame parses as errHelloFrame for
// transports and stays invisible to message decoding.
func TestHelloFrame(t *testing.T) {
	line := helloFrame("node-a")
	if _, _, err := unmarshalRouted(line); !errors.Is(err, errHelloFrame) {
		t.Fatalf("hello decoded as %v, want errHelloFrame", err)
	}
	if _, _, err := UnmarshalWire(line); !errors.Is(err, errHelloFrame) {
		t.Fatalf("UnmarshalWire(hello) = %v, want errHelloFrame", err)
	}
}
