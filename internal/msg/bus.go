package msg

import (
	"fmt"
	"time"

	"softqos/internal/sim"
)

// BusHandler consumes messages delivered to an address.
type BusHandler func(Message)

// Bus is the in-simulation management-plane transport. Each management
// component (coordinator, policy agent, host manager, domain manager)
// binds an address; Send delivers after the configured latency for the
// address pair. It models the prototype's message queues (same host) and
// management sockets (cross host).
type Bus struct {
	sim      *sim.Simulator
	handlers map[string]BusHandler
	hostOf   map[string]string // address -> host, for latency selection

	localDelay  time.Duration
	remoteDelay time.Duration

	Sent      uint64
	Delivered uint64
	Dropped   uint64 // destination not bound at delivery time
}

// NewBus creates a bus with the given IPC latencies: localDelay applies
// between addresses on the same host, remoteDelay otherwise.
func NewBus(s *sim.Simulator, localDelay, remoteDelay time.Duration) *Bus {
	return &Bus{
		sim:         s,
		handlers:    make(map[string]BusHandler),
		hostOf:      make(map[string]string),
		localDelay:  localDelay,
		remoteDelay: remoteDelay,
	}
}

// Bind attaches a handler to an address located on host. Rebinding an
// address replaces the handler (used when a manager restarts).
func (b *Bus) Bind(addr, host string, h BusHandler) {
	b.handlers[addr] = h
	b.hostOf[addr] = host
}

// Unbind removes an address; in-flight messages to it are dropped at
// delivery time.
func (b *Bus) Unbind(addr string) {
	delete(b.handlers, addr)
	delete(b.hostOf, addr)
}

// Bound reports whether an address has a handler.
func (b *Bus) Bound(addr string) bool { _, ok := b.handlers[addr]; return ok }

// Send delivers m to addr after the transport latency. It returns an
// error if the destination is not currently bound (so callers can detect
// dead managers), but a destination that unbinds while the message is in
// flight just drops it.
func (b *Bus) Send(addr string, m Message) error {
	if _, ok := b.handlers[addr]; !ok {
		return fmt.Errorf("msg: no handler bound at %q", addr)
	}
	b.Sent++
	delay := b.remoteDelay
	if from, to := b.hostOf[m.From], b.hostOf[addr]; from != "" && from == to {
		delay = b.localDelay
	}
	b.sim.After(delay, func() {
		h, ok := b.handlers[addr]
		if !ok {
			b.Dropped++
			return
		}
		b.Delivered++
		h(m)
	})
	return nil
}
