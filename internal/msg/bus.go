package msg

import (
	"fmt"
	"time"

	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// typeTags lists every message body tag, for pre-registering per-type
// counters at attach time (keeps the metric name set stable between runs
// regardless of which types actually flow).
var typeTags = []string{"register", "policyset", "violation", "query", "report", "alarm", "directive", "ack"}

// BusHandler consumes messages delivered to an address.
type BusHandler = func(Message)

// Bus is the in-simulation management-plane transport. Each management
// component (coordinator, policy agent, host manager, domain manager)
// binds an address; Send delivers after the configured latency for the
// address pair. It models the prototype's message queues (same host) and
// management sockets (cross host).
type Bus struct {
	sim      *sim.Simulator
	handlers map[string]BusHandler
	hostOf   map[string]string // address -> host, for latency selection

	localDelay  time.Duration
	remoteDelay time.Duration

	// wire selects the codec used for byte accounting (the Bus delivers
	// Message values in-process, so the "wire" only exists as the
	// modeled msg.bus.bytes cost). WireJSON is the default; the
	// pre-existing determinism goldens pin its byte counts.
	wire WireFormat

	Sent           uint64
	Delivered      uint64
	Dropped        uint64 // destination not bound at delivery time
	DroppedInvalid uint64 // decoded but failed Validate

	metrics *busMetrics
}

// busMetrics holds the bus transport's pre-resolved metric handles. The
// invalid-drop counter is resolved lazily on the first drop so the
// registered metric name set (and therefore deterministic snapshots) is
// unchanged for runs where no malformed message ever flows.
type busMetrics struct {
	reg       *telemetry.Registry
	sent      *telemetry.Counter
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
	bytes     *telemetry.Counter
	byType    map[string]*telemetry.Counter
	invalid   *telemetry.Counter // lazy; see droppedInvalid
}

// droppedInvalid counts one validation drop (the Bus is driven by the
// single-threaded simulator loop, so lazy resolution needs no lock).
func (m *busMetrics) droppedInvalid() {
	if m.invalid == nil {
		m.invalid = m.reg.Counter("msg.bus.dropped_invalid")
	}
	m.invalid.Inc()
}

// NewBus creates a bus with the given IPC latencies: localDelay applies
// between addresses on the same host, remoteDelay otherwise.
func NewBus(s *sim.Simulator, localDelay, remoteDelay time.Duration) *Bus {
	return &Bus{
		sim:         s,
		handlers:    make(map[string]BusHandler),
		hostOf:      make(map[string]string),
		localDelay:  localDelay,
		remoteDelay: remoteDelay,
	}
}

// SetWireFormat selects the codec the bus models for byte accounting
// (msg.bus.bytes). Scenario runs that want the binary fast path's
// modeled costs opt in; the default stays WireJSON so existing seeded
// runs are unchanged.
func (b *Bus) SetWireFormat(f WireFormat) { b.wire = f }

// SetMetrics attaches the bus to a metrics registry: counters for
// messages sent/delivered/dropped, wire bytes, and per-type message
// counts under "msg.bus.*".
func (b *Bus) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		b.metrics = nil
		return
	}
	m := &busMetrics{
		reg:       reg,
		sent:      reg.Counter("msg.bus.sent"),
		delivered: reg.Counter("msg.bus.delivered"),
		dropped:   reg.Counter("msg.bus.dropped"),
		bytes:     reg.Counter("msg.bus.bytes"),
		byType:    make(map[string]*telemetry.Counter, len(typeTags)),
	}
	for _, tag := range typeTags {
		m.byType[tag] = reg.Counter("msg.bus.sent." + tag)
	}
	b.metrics = m
}

// Bind attaches a handler to an address located on host. Rebinding an
// address replaces the handler (used when a manager restarts).
func (b *Bus) Bind(addr, host string, h BusHandler) {
	b.handlers[addr] = h
	b.hostOf[addr] = host
}

// Unbind removes an address; in-flight messages to it are dropped at
// delivery time.
func (b *Bus) Unbind(addr string) {
	delete(b.handlers, addr)
	delete(b.hostOf, addr)
}

// Bound reports whether an address has a handler.
func (b *Bus) Bound(addr string) bool { _, ok := b.handlers[addr]; return ok }

// Send delivers m to addr after the transport latency. It returns an
// error if the destination is not currently bound (so callers can detect
// dead managers), but a destination that unbinds while the message is in
// flight just drops it.
func (b *Bus) Send(addr string, m Message) error {
	if _, ok := b.handlers[addr]; !ok {
		return fmt.Errorf("msg: no handler bound at %q", addr)
	}
	if err := Validate(m); err != nil {
		b.DroppedInvalid++
		if b.metrics != nil {
			b.metrics.droppedInvalid()
		}
		return err
	}
	b.Sent++
	if b.metrics != nil {
		b.metrics.sent.Inc()
		if tag, err := typeTag(m.Body); err == nil {
			if c, ok := b.metrics.byType[tag]; ok {
				c.Inc()
			}
		}
		// Byte accounting marshals without the trace context: tracing is
		// out-of-band metadata and must not perturb the deterministic
		// msg.bus.bytes counter pinned by the goldens. The encode goes
		// through a pooled buffer — only the length is kept.
		untraced := m
		untraced.Trace = telemetry.TraceContext{}
		buf := getWireBuf()
		if data, err := appendWire(buf[:0], b.wire, "", untraced); err == nil {
			b.metrics.bytes.Add(uint64(len(data)))
			putWireBuf(data)
		} else {
			putWireBuf(buf)
		}
	}
	delay := b.remoteDelay
	if from, to := b.hostOf[m.From], b.hostOf[addr]; from != "" && from == to {
		delay = b.localDelay
	}
	b.sim.After(delay, func() {
		h, ok := b.handlers[addr]
		if !ok {
			b.Dropped++
			if b.metrics != nil {
				b.metrics.dropped.Inc()
			}
			return
		}
		b.Delivered++
		if b.metrics != nil {
			b.metrics.delivered.Inc()
		}
		h(m)
	})
	return nil
}
