package msg

import (
	"fmt"
	"testing"
	"time"

	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// benchMessages is one message of every management type with realistic
// field sizes, used by the codec and transport benchmarks. The names key
// the per-type sub-benchmarks, so `make bench-diff` can track each wire
// type's trajectory independently.
func benchMessages() []struct {
	name string
	m    Message
} {
	id := Identity{Host: "client-host", PID: 4321, Executable: "mpeg_play",
		Application: "VideoApplication", UserRole: "viewer"}
	return []struct {
		name string
		m    Message
	}{
		{"register", Message{From: "/client-host/app/mpeg_play/4321", Body: Register{
			ID: id, Sensors: []string{"fps_sensor", "jitter_sensor", "buffer_sensor"}}}},
		{"policyset", Message{From: "/mgmt/PolicyAgent", Body: PolicySet{ID: id, Policies: []PolicySpec{{
			Name:       "NotifyQoSViolation",
			Connective: "and",
			Conditions: []CondSpec{
				{Attribute: "frame_rate", Sensor: "fps_sensor", Op: ">=", Value: 24},
				{Attribute: "jitter_rate", Sensor: "jitter_sensor", Op: "<", Value: 0.5},
			},
			Actions: []ActionSpec{
				{Target: "fps_sensor", Op: "read", Args: []string{"frame_rate"}},
				{Target: "/client-host/QoSHostManager", Op: "notify", Args: []string{"frame_rate", "jitter_rate"}},
			},
		}}}}},
		{"violation", Message{From: "/client-host/app/mpeg_play/4321", Body: Violation{
			ID: id, Policy: "NotifyQoSViolation",
			Readings: map[string]float64{"frame_rate": 14.5, "jitter_rate": 0.42, "buffer_size": 12}}}},
		{"query", Message{From: "/mgmt/QoSDomainManager", Body: Query{
			From: "/mgmt/QoSDomainManager", Keys: []string{"cpu_load", "mem_usage", "proc_cpu:4321"}, Ref: "q17"}}},
		{"report", Message{From: "/server-host/QoSHostManager", Body: Report{
			Host: "server-host", Values: map[string]float64{"cpu_load": 3.7, "mem_usage": 0.61, "proc_cpu:4321": 0.22}, Ref: "q17"}}},
		{"alarm", Message{From: "/client-host/QoSHostManager", Body: Alarm{
			ID: id, Policy: "NotifyQoSViolation", Suspect: "remote",
			Readings: map[string]float64{"frame_rate": 14.5, "buffer_size": 0}}}},
		{"directive", Message{From: "/mgmt/QoSDomainManager", Body: Directive{
			From: "/mgmt/QoSDomainManager", Action: "boost_cpu", Target: "mpeg_serv", Amount: 5}}},
		{"ack", Message{From: "/server-host/QoSHostManager", Body: Ack{Ref: "boost_cpu", OK: true}}},
		{"nack", Message{From: "/mgmt/PolicyAgent", Body: Nack{ID: id, Ref: "register", Reason: "repository unavailable"}}},
		{"heartbeat", Message{From: "/client-host/app/mpeg_play/4321", Body: Heartbeat{ID: id, Seq: 93}}},
	}
}

// benchSummary is a realistic host telemetry summary: a handful of
// counters and maxima plus two sketches with a few dozen live buckets —
// roughly what one host ships per flush window in a federated fleet.
func benchSummary() Message {
	sk := telemetry.NewSketch()
	lat := telemetry.NewSketch()
	for i := 0; i < 200; i++ {
		sk.Observe(0.5 + float64(i%37)*0.21)
		lat.Observe(float64(2_000_000 + i*40_000))
	}
	return Message{From: "/h042/QoSHostManager", Body: TelemetrySummary{
		Tier: "host", Source: "/h042/QoSHostManager", Seq: 73, Hosts: 1,
		Counters: map[string]float64{
			"fleet.alarms_raised": 3, "fleet.adaptations": 2, "fleet.samples": 200},
		Maxima: map[string]float64{"fleet.cpu_load_max": 8.4},
		Sketches: []telemetry.NamedSketchSnapshot{
			{Name: "fleet.load", Sketch: sk.Snapshot()},
			{Name: "fleet.detect_adapt_ns", Sketch: lat.Snapshot()},
		}}}
}

// BenchmarkSummaryEncode measures the telemetry-summary wire cost per
// format — the per-host per-window overhead the federated collection
// plane adds to the uplink.
func BenchmarkSummaryEncode(b *testing.B) {
	m := benchSummary()
	for _, f := range []struct {
		name   string
		format WireFormat
	}{{"json", WireJSON}, {"binary", WireBinary}} {
		data, err := MarshalWire(f.format, RegionAddrForBench, m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.name+"/marshal", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				buf := getWireBuf()
				out, err := appendWire(buf[:0], f.format, RegionAddrForBench, m)
				if err != nil {
					b.Fatal(err)
				}
				putWireBuf(out)
			}
		})
		b.Run(f.name+"/unmarshal", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, _, err := UnmarshalWire(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// RegionAddrForBench mirrors scenario.RegionAddr without importing it
// (internal/scenario imports msg; the reverse would cycle).
const RegionAddrForBench = "/mgmt/QoSRegionManager"

// BenchmarkCodecMarshal measures envelope encoding per message type and
// wire format (the sender-side hot path of every transport).
func BenchmarkCodecMarshal(b *testing.B) {
	for _, f := range []struct {
		name   string
		format WireFormat
	}{{"json", WireJSON}, {"binary", WireBinary}} {
		for _, tc := range benchMessages() {
			b.Run(f.name+"/"+tc.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					buf := getWireBuf()
					data, err := appendWire(buf[:0], f.format, "/client-host/QoSHostManager", tc.m)
					if err != nil {
						b.Fatal(err)
					}
					putWireBuf(data)
				}
			})
		}
	}
}

// BenchmarkCodecUnmarshal measures frame decoding per message type and
// wire format (the receiver-side hot path).
func BenchmarkCodecUnmarshal(b *testing.B) {
	for _, f := range []struct {
		name   string
		format WireFormat
	}{{"json", WireJSON}, {"binary", WireBinary}} {
		for _, tc := range benchMessages() {
			data, err := MarshalWire(f.format, "/client-host/QoSHostManager", tc.m)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(f.name+"/"+tc.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := UnmarshalWire(data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCodecRoundTrip is the named hot-path gate benchmark: one
// violation (the most common hot-path message) encoded and decoded, per
// wire format. make bench-diff fails the build if its allocs/op regress.
func BenchmarkCodecRoundTrip(b *testing.B) {
	var viol Message
	for _, tc := range benchMessages() {
		if tc.name == "violation" {
			viol = tc.m
		}
	}
	for _, f := range []struct {
		name   string
		format WireFormat
	}{{"json", WireJSON}, {"binary", WireBinary}} {
		b.Run(f.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := getWireBuf()
				data, err := appendWire(buf[:0], f.format, "/client-host/QoSHostManager", viol)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := UnmarshalWire(data); err != nil {
					b.Fatal(err)
				}
				putWireBuf(data)
			}
		})
	}
}

// BenchmarkBusSend measures the sim transport's per-message cost with
// metrics (and therefore byte accounting) attached — the configuration
// every scenario run uses.
func BenchmarkBusSend(b *testing.B) {
	for _, f := range []struct {
		name   string
		format WireFormat
	}{{"json", WireJSON}, {"binary", WireBinary}} {
		b.Run(f.name, func(b *testing.B) {
			s := sim.New(1)
			bus := NewBus(s, 100*time.Microsecond, 2*time.Millisecond)
			bus.SetWireFormat(f.format)
			reg := telemetry.NewRegistry(func() time.Duration { return 0 })
			bus.SetMetrics(reg)
			bus.Bind("/mgr", "h", func(Message) {})
			bus.Bind("/coord", "h", func(Message) {})
			m := Message{From: "/coord", Body: Violation{
				ID:       Identity{Host: "h", PID: 7, Executable: "mpeg_play"},
				Policy:   "NotifyQoSViolation",
				Readings: map[string]float64{"frame_rate": 14.5, "jitter_rate": 0.42, "buffer_size": 12}}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bus.Send("/mgr", m); err != nil {
					b.Fatal(err)
				}
				if i%1024 == 0 {
					s.Run()
				}
			}
			s.Run()
		})
	}
}

// BenchmarkNetRoundTrip measures a full TCP request/reply between two
// NetTransport nodes per wire configuration: a violation out, an ack
// back. This is the live control loop's transport floor.
func BenchmarkNetRoundTrip(b *testing.B) {
	for _, f := range []struct {
		name   string
		format WireFormat
	}{{"json", WireJSON}, {"binary", WireBinary}} {
		b.Run(f.name, func(b *testing.B) {
			mgr, err := NewNetTransport("mgr-host", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			coord, err := NewNetTransport("coord-host", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer coord.Close()
			mgr.SetWireFormat(f.format)
			coord.SetWireFormat(f.format)

			acks := make(chan struct{}, 1)
			mgr.Bind("/h/QoSHostManager", "mgr-host", func(m Message) {
				_ = mgr.Send(m.From, Message{From: "/h/QoSHostManager", Body: Ack{Ref: "v", OK: true}})
			})
			coord.Bind("/h/app/x/7", "coord-host", func(m Message) { acks <- struct{}{} })
			coord.Route("/h/QoSHostManager", mgr.Addr())
			mgr.Route("/h/app/x/7", coord.Addr())
			viol := Message{From: "/h/app/x/7", Body: Violation{
				ID:       Identity{Host: "h", PID: 7, Executable: "x"},
				Policy:   "P",
				Readings: map[string]float64{"frame_rate": 14.5, "jitter_rate": 0.42}}}
			// Prime connections (and wire negotiation) outside the timer.
			if err := coord.Send("/h/QoSHostManager", viol); err != nil {
				b.Fatal(err)
			}
			<-acks
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := coord.Send("/h/QoSHostManager", viol); err != nil {
					b.Fatal(err)
				}
				<-acks
			}
		})
	}
}

// BenchmarkValidate pins the per-message validation cost paid on every
// transport send and receive.
func BenchmarkValidate(b *testing.B) {
	msgs := benchMessages()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Validate(msgs[i%len(msgs)].m); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt imported if cases change
