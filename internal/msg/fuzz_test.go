package msg

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"softqos/internal/telemetry"
)

// FuzzUnmarshal feeds arbitrary bytes to the wire decoder. The invariants
// are absolute: never panic, never return a message and an error
// together, and classify malformed binary frames as the documented typed
// errors. The seed corpus covers both formats plus every deterministic
// malformation the unit tests pin.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range codecCorpus() {
		for _, wf := range []WireFormat{WireJSON, WireBinary} {
			data, err := MarshalWire(wf, "/dest/addr", m)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, binVersion})
	f.Add([]byte{binMagic, 99, 1, kindAck})
	f.Add(append([]byte{binMagic, binVersion}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F))
	f.Add([]byte{binMagic, binVersion, 4, 77, 0, 0, 0})
	f.Add([]byte(`{"type":"ack","body":{"ref":"r","ok":true}}`))
	f.Add([]byte(`{"type":"nosuch","body":{}}`))
	f.Add(helloFrame("fuzz"))

	f.Fuzz(func(t *testing.T, data []byte) {
		to, m, err := UnmarshalWire(data) // must not panic
		if err != nil {
			return
		}
		// Decoded successfully: the message must survive a binary
		// re-encode byte-stably (decode → encode is a fixpoint).
		re, err := MarshalWire(WireBinary, to, m)
		if err != nil {
			t.Fatalf("re-marshal of decoded message failed: %v", err)
		}
		to2, m2, err := UnmarshalWire(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if to2 != to {
			t.Fatalf("to changed across round-trip: %q -> %q", to, to2)
		}
		re2, err := MarshalWire(WireBinary, to2, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("binary encoding not a fixpoint:\n%x\n%x", re, re2)
		}
	})
}

// FuzzBinaryTruncation: for any decodable binary frame, every strict
// prefix must fail loudly with a typed error — the stream reader depends
// on truncation never decoding as success.
func FuzzBinaryTruncation(f *testing.F) {
	for _, m := range codecCorpus() {
		data, err := MarshalWire(WireBinary, "/d", m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, 5)
	}
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if len(data) == 0 || data[0] != binMagic {
			return
		}
		if _, _, err := UnmarshalWire(data); err != nil {
			return // not a valid frame to begin with
		}
		if cut < 0 {
			cut = -cut
		}
		cut %= len(data) // strict prefix: 0..len-1
		_, _, err := UnmarshalWire(data[:cut])
		if err == nil {
			t.Fatalf("%d-byte prefix of a %d-byte frame decoded successfully", cut, len(data))
		}
		if cut == 0 {
			return // empty input routes to the JSON decoder's generic error
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFrameTooBig) &&
			!errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrBadKind) &&
			!errors.Is(err, ErrTrailingBytes) && !errors.Is(err, ErrNotBinary) {
			t.Fatalf("prefix error is untyped: %v", err)
		}
	})
}

// FuzzPolicyDelta targets the newest wire kind specifically: arbitrary
// bytes never panic the decoder, strict prefixes of a valid binary
// delta frame fail with typed errors, and a delta built from fuzzed
// fields round-trips equivalently through both codecs (canonical binary
// re-encode comparison, same as FuzzCodecRoundTrip).
func FuzzPolicyDelta(f *testing.F) {
	f.Add(uint64(7), uint64(6), "mpeg_play", "canary", "h-0", "P", 24.0, []byte{})
	f.Add(uint64(1), uint64(0), "x", "fleet", "", "", -0.5, []byte{binMagic})
	f.Add(uint64(1<<63), uint64(0), "ünïcode", "rollback", "h \"q\" <>&", "Q", 1e300, []byte{binMagic, binVersion})
	for _, m := range codecCorpus() {
		if _, ok := m.Body.(PolicyDelta); !ok {
			continue
		}
		data, err := MarshalWire(WireBinary, "/d", m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint64(2), uint64(1), "x", "fleet", "h", "P", 0.0, data)
	}
	f.Fuzz(func(t *testing.T, gen, prev uint64, exe, scope, host, policy string, val float64, raw []byte) {
		// Leg 1: the raw bytes through the decoder — must not panic, and
		// if they decode, truncation of every strict prefix must be loud
		// and typed when the frame is binary.
		if _, _, err := UnmarshalWire(raw); err == nil &&
			len(raw) > 0 && raw[0] == binMagic {
			for n := 1; n < len(raw); n++ {
				_, _, err := UnmarshalWire(raw[:n])
				if err == nil {
					t.Fatalf("%d-byte prefix of a %d-byte frame decoded successfully", n, len(raw))
				}
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFrameTooBig) &&
					!errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrBadKind) &&
					!errors.Is(err, ErrTrailingBytes) {
					t.Fatalf("prefix error is untyped: %v", err)
				}
			}
		}

		// Leg 2: a delta built from the fuzzed fields must round-trip
		// equivalently through both wire formats.
		if val != val || val > 1.7e308 || val < -1.7e308 {
			return // JSON cannot carry NaN/Inf
		}
		exe = strings.ToValidUTF8(exe, "�")
		scope = strings.ToValidUTF8(scope, "�")
		host = strings.ToValidUTF8(host, "�")
		policy = strings.ToValidUTF8(policy, "�")
		m := Message{From: "/mgmt/repo", Body: PolicyDelta{
			Generation: gen, Prev: prev, Executable: exe, Scope: scope,
			Hosts: []string{host},
			Policies: []PolicySpec{{Name: policy, Connective: "and",
				Conditions: []CondSpec{{Attribute: policy, Sensor: exe, Op: ">=", Value: val}},
				Actions:    []ActionSpec{{Target: exe, Op: "read", Args: []string{policy}}}}},
			Reason: scope}}
		canon, err := MarshalWire(WireBinary, "/dest", m)
		if err != nil {
			t.Fatal(err)
		}
		for _, wf := range []WireFormat{WireJSON, WireBinary} {
			data, err := MarshalWire(wf, "/dest", m)
			if err != nil {
				t.Fatalf("format %d: marshal: %v", wf, err)
			}
			to, got, err := UnmarshalWire(data)
			if err != nil {
				t.Fatalf("format %d: unmarshal: %v", wf, err)
			}
			if to != "/dest" || got.From != m.From {
				t.Fatalf("format %d: envelope changed: to=%q from=%q", wf, to, got.From)
			}
			again, err := MarshalWire(WireBinary, to, got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, again) {
				t.Fatalf("format %d: canonical encodings differ:\n%x\n%x", wf, canon, again)
			}
		}
	})
}

// FuzzCodecRoundTrip builds a message from fuzzed field values and
// requires both codecs to carry it losslessly (modulo the documented
// nil/empty map normalization, checked via canonical re-encode).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("/h/app/x/1", "/mgmt/agent", "frame_rate", 14.5, uint64(3), true, "trace#1")
	f.Add("", "", "", -0.25, uint64(0), false, "")
	f.Add("/h/über", "weird \"to\" <>&", "ünïcode\n\t", 1e308, uint64(1<<63), true, "t")
	f.Fuzz(func(t *testing.T, from, to, attr string, val float64, seq uint64, flag bool, traceID string) {
		if val != val || val > 1.7e308 || val < -1.7e308 {
			return // JSON cannot carry NaN/Inf; out of scope for both codecs
		}
		// The management plane only ever carries UTF-8 addresses and
		// names; JSON re-encodes invalid sequences as U+FFFD, so align
		// the inputs rather than testing a lossy path.
		from = strings.ToValidUTF8(from, "�")
		to = strings.ToValidUTF8(to, "�")
		attr = strings.ToValidUTF8(attr, "�")
		traceID = strings.ToValidUTF8(traceID, "�")
		id := Identity{Host: from, PID: int(seq % 1 << 16), Executable: attr, Application: "app"}
		msgs := []Message{
			{From: from, Body: Violation{ID: id, Policy: attr,
				Readings: map[string]float64{attr: val}, Overshoot: flag}},
			{From: from, Body: Report{Host: from, Values: map[string]float64{attr: val}, Ref: attr}},
			{From: from, Body: Heartbeat{ID: id, Seq: seq}},
			{From: from, Body: Ack{Ref: attr, OK: flag, Err: to}},
			{From: from, Body: Query{From: from, Keys: []string{attr, to}, Ref: attr}},
		}
		if traceID != "" {
			msgs[0].Trace = telemetry.TraceContext{TraceID: traceID, Span: int(seq % 1 << 20)}
		}
		for i, m := range msgs {
			for _, wf := range []WireFormat{WireJSON, WireBinary} {
				data, err := MarshalWire(wf, to, m)
				if err != nil {
					t.Fatalf("message %d format %d: marshal: %v", i, wf, err)
				}
				gotTo, got, err := UnmarshalWire(data)
				if err != nil {
					t.Fatalf("message %d format %d: unmarshal: %v", i, wf, err)
				}
				if gotTo != to {
					t.Fatalf("message %d format %d: to = %q, want %q", i, wf, gotTo, to)
				}
				if got.From != m.From || got.Trace != m.Trace {
					t.Fatalf("message %d format %d: envelope changed: %+v", i, wf, got)
				}
				// Canonical comparison: both the original and the decoded
				// message must produce identical binary encodings.
				want, err := MarshalWire(WireBinary, to, m)
				if err != nil {
					t.Fatal(err)
				}
				again, err := MarshalWire(WireBinary, gotTo, got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, again) {
					t.Fatalf("message %d format %d: canonical encodings differ:\n%x\n%x", i, wf, want, again)
				}
			}
		}
	})
}
