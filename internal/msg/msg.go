// Package msg defines the management-plane protocol spoken between
// instrumented processes (coordinators), policy agents, QoS host managers
// and QoS domain managers, together with two interchangeable transports:
// an in-simulation bus (the analogue of the prototype's UNIX message
// queues) and a TCP JSON-lines transport (the analogue of its sockets)
// used by live, wall-clock instrumentation.
package msg

import (
	"encoding/json"
	"fmt"

	"softqos/internal/telemetry"
)

// Identity names a managed process the way the paper's policy agent keys
// policy lookup: process, executable, application, user role, host.
type Identity struct {
	Host        string `json:"host"`
	PID         int    `json:"pid"`
	Executable  string `json:"executable"`
	Application string `json:"application"`
	UserRole    string `json:"userRole"`
}

// Address returns the canonical hierarchical name used in policy subjects,
// e.g. "/video-client/VideoApplication/mpeg_play/1234".
func (id Identity) Address() string {
	return fmt.Sprintf("/%s/%s/%s/%d", id.Host, id.Application, id.Executable, id.PID)
}

// Register is sent by a starting process to the policy agent (§6.2 Policy
// Agent: "When a process starts up, it registers with the policy agent").
type Register struct {
	ID      Identity `json:"id"`
	Sensors []string `json:"sensors"` // sensor identifiers compiled into the executable
}

// PolicySpec is the wire form of one compiled policy delivered to a
// coordinator: the condition list, boolean connective and action list of
// §5.2.
type PolicySpec struct {
	Name       string       `json:"name"`
	Connective string       `json:"connective"` // "and" | "or"
	Conditions []CondSpec   `json:"conditions"`
	Actions    []ActionSpec `json:"actions"`
}

// CondSpec is one (attribute, sensor, comparison, value) condition.
type CondSpec struct {
	Attribute string  `json:"attribute"`
	Sensor    string  `json:"sensor"`
	Op        string  `json:"op"` // "<", "<=", ">", ">=", "==", "!="
	Value     float64 `json:"value"`
}

// ActionSpec is one (target, operation, arguments) action entry.
type ActionSpec struct {
	Target string   `json:"target"` // sensor id or manager address
	Op     string   `json:"op"`     // e.g. "read", "notify"
	Args   []string `json:"args"`
}

// PolicySet is the policy agent's reply to Register.
type PolicySet struct {
	ID       Identity     `json:"id"`
	Policies []PolicySpec `json:"policies"`
}

// Violation is the coordinator's report to the QoS Host Manager when a
// policy's boolean expression evaluates false: the executed "do" actions'
// sensor readings ride along.
type Violation struct {
	ID        Identity           `json:"id"`
	Policy    string             `json:"policy"`
	Readings  map[string]float64 `json:"readings"`
	Overshoot bool               `json:"overshoot"` // metric exceeded expectation (resource reclaim, not a fault)
}

// Query asks a host manager for host/process statistics (domain manager
// rule: "ask the corresponding server-side QoS Host Manager for CPU load
// and memory usage").
type Query struct {
	From string   `json:"from"`
	Keys []string `json:"keys"` // e.g. "cpu_load", "mem_usage", "proc_cpu:<pid>"
	Ref  string   `json:"ref"`  // correlation tag echoed in the reply
}

// Report carries statistic values back to the querier.
type Report struct {
	Host   string             `json:"host"`
	Values map[string]float64 `json:"values"`
	Ref    string             `json:"ref"`
}

// Alarm escalates a suspected non-local fault from a host manager to the
// domain manager.
type Alarm struct {
	ID       Identity           `json:"id"`
	Policy   string             `json:"policy"`
	Readings map[string]float64 `json:"readings"`
	Suspect  string             `json:"suspect"` // "remote", "network", ...
}

// Directive is a corrective action pushed down to a host manager, e.g.
// "increase the CPU priority of the server process".
type Directive struct {
	From   string  `json:"from"`
	Action string  `json:"action"` // "boost_cpu", "set_resident", "reroute"
	Target string  `json:"target"` // executable or pid selector
	Amount float64 `json:"amount"`
}

// Ack confirms receipt/execution of a directive.
type Ack struct {
	Ref string `json:"ref"`
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// Nack is an explicit failure reply: the receiver could not serve the
// request (e.g. the policy agent's repository lookup failed), so the
// sender must not mistake the outcome for an empty result.
type Nack struct {
	ID     Identity `json:"id"`
	Ref    string   `json:"ref"`    // what was being answered, e.g. "register"
	Reason string   `json:"reason"` // human-readable cause
}

// Heartbeat is a coordinator's periodic liveness beacon to its host
// manager. Seq increments per beacon so a manager can notice gaps; a
// manager that has never seen the sender treats the beacon as a prompt
// to re-adopt the process (the self-healing path after a manager
// restart).
type Heartbeat struct {
	ID  Identity `json:"id"`
	Seq uint64   `json:"seq"`
}

// BatchedAlarm is one coalesced entry of an AlarmBatch: the
// representative alarm (the latest occurrence's readings win), how many
// occurrences the coalescing window merged into it, and the highest
// severity observed among them.
type BatchedAlarm struct {
	Alarm    Alarm `json:"alarm"`
	Count    int   `json:"count"`
	Severity int   `json:"severity,omitempty"`
}

// AlarmBatch carries one tier's coalesced alarm traffic up the
// management hierarchy (host managers to a domain manager, domain
// managers to a region manager): the per-window alarm entries plus
// summary aggregates such as "domain_saturation" that replace per-host
// floods at the receiving tier. Tier names the emitting tier ("host",
// "domain").
type AlarmBatch struct {
	Tier    string             `json:"tier"`
	Alarms  []BatchedAlarm     `json:"alarms,omitempty"`
	Summary map[string]float64 `json:"summary,omitempty"`
}

// TelemetrySummary carries one flush window of telemetry up the
// management hierarchy: counter deltas, window maxima and mergeable
// sketch histograms. Hosts export one per window to their domain;
// domains merge inbound host summaries and export the merged window to
// the region — so the region reconstructs fleet-level distributions
// without ever holding per-host state. Tier names the emitting tier
// ("host", "domain"), Source the emitting management address, Seq the
// sender's window sequence number, and Hosts how many hosts the
// summary's window covers (1 for a host's own export).
type TelemetrySummary struct {
	Tier     string                          `json:"tier"`
	Source   string                          `json:"source"`
	Seq      uint64                          `json:"seq"`
	Hosts    uint64                          `json:"hosts,omitempty"`
	Counters map[string]float64              `json:"counters,omitempty"`
	Maxima   map[string]float64              `json:"maxima,omitempty"`
	Sketches []telemetry.NamedSketchSnapshot `json:"sketches,omitempty"`
}

// PolicyDelta pushes one policy generation change from the repository
// hub down the management hierarchy to subscribed agents (watch/notify:
// the repository notifies instead of agents re-pulling). Generation is
// the hub's monotonic counter after the change; Prev is the generation
// this delta supersedes, so a receiver whose cache is not at Prev knows
// it missed an update and must re-pull the full policy set. Scope
// selects the rollout stage: "canary" applies only on the listed Hosts,
// "fleet" promotes everywhere, "rollback" restores the prior policy set
// everywhere. Policies is the complete post-change policy set for
// Executable (deltas are state-carrying, so one frame suffices to
// converge a gap-free cache).
type PolicyDelta struct {
	Generation uint64       `json:"generation"`
	Prev       uint64       `json:"prev"`
	Executable string       `json:"executable"`
	Scope      string       `json:"scope"` // "canary" | "fleet" | "rollback"
	Hosts      []string     `json:"hosts,omitempty"`
	Policies   []PolicySpec `json:"policies,omitempty"`
	Reason     string       `json:"reason,omitempty"`
}

// Message is the envelope union: exactly one well-known body type. Trace
// is out-of-band observability metadata — the violation-trace context the
// message extends, propagated identically by both transports and absent
// from the wire when zero (so tracing never changes message framing for
// untraced traffic).
type Message struct {
	From  string                 `json:"from"`
	Trace telemetry.TraceContext `json:"-"`
	Body  any                    `json:"-"`
}

// envelope is the JSON wire form with an explicit type tag. To carries
// the destination management address when the frame travels over a
// routed transport (NetTransport); point-to-point connections leave it
// empty. Trace is carried only when the message has one.
type envelope struct {
	From  string                  `json:"from"`
	To    string                  `json:"to,omitempty"`
	Type  string                  `json:"type"`
	Trace *telemetry.TraceContext `json:"trace,omitempty"`
	Body  json.RawMessage         `json:"body"`
}

// TypeTag returns the wire type tag for a message body ("violation",
// "heartbeat", ...), or an error for an unknown body type. Fault
// injection and other transport middleware select messages by it.
func TypeTag(body any) (string, error) { return typeTag(body) }

func typeTag(body any) (string, error) {
	switch body.(type) {
	case Register, *Register:
		return "register", nil
	case PolicySet, *PolicySet:
		return "policyset", nil
	case Violation, *Violation:
		return "violation", nil
	case Query, *Query:
		return "query", nil
	case Report, *Report:
		return "report", nil
	case Alarm, *Alarm:
		return "alarm", nil
	case Directive, *Directive:
		return "directive", nil
	case Ack, *Ack:
		return "ack", nil
	case Nack, *Nack:
		return "nack", nil
	case Heartbeat, *Heartbeat:
		return "heartbeat", nil
	case AlarmBatch, *AlarmBatch:
		return "alarmbatch", nil
	case TelemetrySummary, *TelemetrySummary:
		return "telemetrysummary", nil
	case PolicyDelta, *PolicyDelta:
		return "policydelta", nil
	default:
		return "", fmt.Errorf("msg: unknown body type %T", body)
	}
}

// Marshal encodes a message as one JSON line (no trailing newline).
func Marshal(m Message) ([]byte, error) {
	return marshalRouted("", m)
}

// marshalRouted encodes a message addressed to a management address, for
// transports that multiplex many destinations over one connection. The
// envelope is hand-built around a single body marshal (see
// appendJSONFrame); the output is byte-identical to marshaling the
// envelope struct, which the determinism goldens pin via byte counters.
func marshalRouted(to string, m Message) ([]byte, error) {
	return appendJSONFrame(nil, to, m)
}

// Unmarshal decodes one JSON line into a Message whose Body has the
// concrete type named by the envelope tag.
func Unmarshal(data []byte) (Message, error) {
	_, m, err := unmarshalRouted(data)
	return m, err
}

// unmarshalRouted decodes one JSON line, also returning the destination
// management address (empty for point-to-point frames).
func unmarshalRouted(data []byte) (string, Message, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return "", Message{}, fmt.Errorf("msg: bad envelope: %w", err)
	}
	var body any
	switch env.Type {
	case "register":
		body = &Register{}
	case "policyset":
		body = &PolicySet{}
	case "violation":
		body = &Violation{}
	case "query":
		body = &Query{}
	case "report":
		body = &Report{}
	case "alarm":
		body = &Alarm{}
	case "directive":
		body = &Directive{}
	case "ack":
		body = &Ack{}
	case "nack":
		body = &Nack{}
	case "heartbeat":
		body = &Heartbeat{}
	case "alarmbatch":
		body = &AlarmBatch{}
	case "telemetrysummary":
		body = &TelemetrySummary{}
	case "policydelta":
		body = &PolicyDelta{}
	case "hello":
		// Wire-format negotiation control frame (see wire.go), not a
		// management message: transports intercept it, everyone else
		// treats it as undecodable.
		return "", Message{}, errHelloFrame
	default:
		return "", Message{}, fmt.Errorf("msg: unknown message type %q", env.Type)
	}
	if err := json.Unmarshal(env.Body, body); err != nil {
		return "", Message{}, fmt.Errorf("msg: bad %s body: %w", env.Type, err)
	}
	m := Message{From: env.From, Body: body}
	if env.Trace != nil {
		m.Trace = *env.Trace
	}
	return env.To, m, nil
}

// SendFunc transmits a management message to a management address. The
// Send methods of both transports (Bus and NetTransport) satisfy it; the
// managers and coordinators depend only on this signature.
type SendFunc func(to string, m Message) error
