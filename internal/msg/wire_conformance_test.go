package msg

import (
	"fmt"
	"testing"
	"time"

	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// Cross-codec conformance: the management plane's semantics must be
// identical whichever wire format each peer is configured with. The
// matrix covers both homogeneous deployments and the mixed-fleet case a
// rolling upgrade produces: a binary-capable sender talking to a
// JSON-only listener must silently stay on JSON (negotiation never
// upgrades without a hello from the peer), and the reverse pairing must
// deliver every JSON frame to a binary-capable listener.

type wirePairCase struct {
	name     string
	sender   WireFormat
	receiver WireFormat
	// upgraded: whether sender→receiver data frames are expected to end
	// up binary once negotiation settles.
	upgraded bool
}

var wirePairCases = []wirePairCase{
	{"json-to-json", WireJSON, WireJSON, false},
	{"binary-to-binary", WireBinary, WireBinary, true},
	{"binary-to-json", WireBinary, WireJSON, false}, // negotiates down
	{"json-to-binary", WireJSON, WireBinary, false},
}

// openWirePair starts two connected NetTransports with the given wire
// configs and a route from each to the other.
func openWirePair(t *testing.T, sf, rf WireFormat) (sender, receiver *NetTransport) {
	t.Helper()
	sender, err := NewNetTransport("hostA", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sender.Close() })
	receiver, err = NewNetTransport("hostB", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { receiver.Close() })
	sender.SetWireFormat(sf)
	receiver.SetWireFormat(rf)
	sender.Route("/hostB/sink", receiver.Addr())
	receiver.Route("/hostA/reply", sender.Addr())
	return sender, receiver
}

// pumpUntil spins the two dispatchers until cond holds or the deadline
// passes (deliveries ride the receiver's reader goroutine, so there is
// no single queue to drain deterministically).
func pumpUntil(t *testing.T, sender, receiver *NetTransport, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := false
		receiver.Sync(func() { sender.Sync(func() { ok = cond() }) })
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

func TestWireFormatConformance(t *testing.T) {
	for _, tc := range wirePairCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sender, receiver := openWirePair(t, tc.sender, tc.receiver)
			var got []Message
			receiver.Sync(func() {}) // dispatcher up
			receiver.Bind("/hostB/sink", "hostB", func(m Message) {
				receiver.Do(func() { got = append(got, m) })
			})

			// Every management type, including one traced message, twice:
			// the first frame rides the pre-negotiation connection, the
			// repeat rides the (possibly upgraded) settled connection.
			msgs := oneOfEach()
			msgs = append(msgs, Message{From: "/hostA/src",
				Trace: telemetry.TraceContext{TraceID: "/hostA/src#9", Span: 2},
				Body:  Violation{ID: Identity{Host: "hostA", PID: 7, Executable: "x"}, Policy: "P"}})
			for round := 0; round < 2; round++ {
				for _, m := range msgs {
					if err := sender.Send("/hostB/sink", m); err != nil {
						t.Fatalf("round %d send %T: %v", round, m.Body, err)
					}
				}
			}
			want := 2 * len(msgs)
			pumpUntil(t, sender, receiver, func() bool { return len(got) == want })

			for i, m := range got {
				ref := msgs[i%len(msgs)]
				wantTag, _ := typeTag(ref.Body)
				haveTag, err := typeTag(m.Body)
				if err != nil {
					t.Fatal(err)
				}
				if haveTag != wantTag {
					t.Errorf("message %d: delivered %q, sent %q", i, haveTag, wantTag)
				}
				if m.From != ref.From {
					t.Errorf("message %d: From = %q, want %q", i, m.From, ref.From)
				}
				if m.Trace != ref.Trace {
					t.Errorf("message %d: trace = %+v, want %+v", i, m.Trace, ref.Trace)
				}
			}

			// Validation is codec-independent: an invalid message is
			// rejected before any frame is cut.
			if err := sender.Send("/hostB/sink", Message{From: "/hostA/src",
				Body: Violation{Policy: "P"}}); err == nil {
				t.Error("invalid message accepted")
			}
		})
	}
}

// TestWireNegotiationDown pins the mixed-fleet byte accounting: a
// binary-capable sender facing a JSON-only peer never cuts a binary
// frame (JSON byte counts exactly match a json-to-json deployment),
// while a binary pair's settled connection sends strictly smaller
// frames.
func TestWireNegotiationDown(t *testing.T) {
	bytesSent := func(sf, rf WireFormat) uint64 {
		sender, receiver := openWirePair(t, sf, rf)
		reg := telemetry.NewRegistry(func() time.Duration { return 0 })
		sender.SetMetrics(reg)
		delivered := 0
		receiver.Bind("/hostB/sink", "hostB", func(m Message) {
			receiver.Do(func() { delivered++ })
		})
		m := Message{From: "/hostA/src", Body: Violation{
			ID: Identity{Host: "hostA", PID: 7, Executable: "x"}, Policy: "P",
			Readings: map[string]float64{"frame_rate": 12.5}}}
		// Prime the connection (and negotiation) with one message, then
		// measure a settled batch.
		if err := sender.Send("/hostB/sink", m); err != nil {
			t.Fatal(err)
		}
		pumpUntil(t, sender, receiver, func() bool { return delivered == 1 })
		before := reg.Counter("msg.net.bytes").Value()
		const batch = 16
		for i := 0; i < batch; i++ {
			if err := sender.Send("/hostB/sink", m); err != nil {
				t.Fatal(err)
			}
		}
		pumpUntil(t, sender, receiver, func() bool { return delivered == 1+batch })
		return reg.Counter("msg.net.bytes").Value() - before
	}

	jsonBaseline := bytesSent(WireJSON, WireJSON)
	negotiatedDown := bytesSent(WireBinary, WireJSON)
	binaryPair := bytesSent(WireBinary, WireBinary)

	if negotiatedDown != jsonBaseline {
		t.Errorf("binary→json sender cut %d wire bytes, json→json cut %d — negotiation must stay on JSON",
			negotiatedDown, jsonBaseline)
	}
	if binaryPair >= jsonBaseline {
		t.Errorf("binary pair cut %d wire bytes, json baseline %d — settled binary frames should be smaller",
			binaryPair, jsonBaseline)
	}
}

// TestBusWireFormats: the Bus models both codecs for byte accounting;
// delivery semantics and counts are identical, only msg.bus.bytes moves.
func TestBusWireFormats(t *testing.T) {
	run := func(f WireFormat) (delivered int, bytes uint64) {
		s := sim.New(1)
		b := NewBus(s, time.Millisecond, 5*time.Millisecond)
		b.SetWireFormat(f)
		reg := telemetry.NewRegistry(func() time.Duration { return 0 })
		b.SetMetrics(reg)
		b.Bind("/conf/sink", "conf", func(Message) { delivered++ })
		for _, m := range oneOfEach() {
			if err := b.Send("/conf/sink", m); err != nil {
				t.Fatal(err)
			}
		}
		s.RunFor(time.Second)
		return delivered, reg.Counter("msg.bus.bytes").Value()
	}
	jd, jb := run(WireJSON)
	bd, bb := run(WireBinary)
	if jd != bd {
		t.Errorf("delivery count depends on modeled codec: json=%d binary=%d", jd, bd)
	}
	if bb == 0 || jb == 0 {
		t.Fatalf("byte accounting missing: json=%d binary=%d", jb, bb)
	}
	if bb >= jb {
		t.Errorf("binary modeled bytes (%d) not smaller than JSON (%d)", bb, jb)
	}
}

// TestConnWireFormats: the point-to-point Conn carries every type under
// both formats, including a mid-stream format switch (receivers sniff
// per frame).
func TestConnWireFormats(t *testing.T) {
	recv := make(chan Message, 64)
	srv, err := Serve("127.0.0.1:0", func(_ *Conn, m Message) { recv <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sent []Message
	for i, f := range []WireFormat{WireJSON, WireBinary, WireJSON, WireBinary} {
		c.SetWireFormat(f)
		m := Message{From: "/h/src", Body: Ack{Ref: fmt.Sprintf("switch-%d", i), OK: true}}
		if err := c.Send(m); err != nil {
			t.Fatalf("frame %d (%v): %v", i, f, err)
		}
		sent = append(sent, m)
	}
	for i, want := range sent {
		select {
		case got := <-recv:
			assertSameMessage(t, i, want, got)
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}
