package msg

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"softqos/internal/telemetry"
)

// echoServer starts a loopback server that echoes every message verbatim.
func echoServer(t *testing.T) (*Server, *Conn) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(c *Conn, m Message) { _ = c.Send(m) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return srv, c
}

func TestTCPLoopbackAllMessageTypes(t *testing.T) {
	_, c := echoServer(t)
	id := Identity{Host: "client-host", PID: 77, Executable: "mpeg_play",
		Application: "VideoApplication", UserRole: "physician"}
	bodies := []any{
		Register{ID: id, Sensors: []string{"fps_sensor"}},
		PolicySet{ID: id, Policies: []PolicySpec{{
			Name: "P", Connective: "and",
			Conditions: []CondSpec{{Attribute: "frame_rate", Sensor: "fps_sensor", Op: ">", Value: 23}},
			Actions:    []ActionSpec{{Target: "fps_sensor", Op: "read", Args: []string{"frame_rate"}}},
		}}},
		Violation{ID: id, Policy: "P", Readings: map[string]float64{"frame_rate": 12}},
		Query{From: "/domain", Keys: []string{"cpu_load"}, Ref: "q1"},
		Report{Host: "server-host", Values: map[string]float64{"cpu_load": 4.2}, Ref: "q1"},
		Alarm{ID: id, Policy: "P", Suspect: "remote", Readings: map[string]float64{"buffer_size": 0}},
		Directive{From: "/domain", Action: "boost_cpu", Target: "mpeg_serve", Amount: 10},
		Ack{Ref: "d1", OK: true, Err: "detail"},
	}
	if len(bodies) != len(typeTags) {
		t.Fatalf("test covers %d body types, transport has %d", len(bodies), len(typeTags))
	}
	for _, body := range bodies {
		in := Message{From: "/test/sender", Body: body}
		if err := c.Send(in); err != nil {
			t.Fatalf("send %T: %v", body, err)
		}
		out, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %T: %v", body, err)
		}
		if out.From != in.From {
			t.Errorf("%T: from = %q", body, out.From)
		}
		got := reflect.ValueOf(out.Body).Elem().Interface()
		if !reflect.DeepEqual(got, body) {
			t.Errorf("%T loopback:\n got %+v\nwant %+v", body, got, body)
		}
	}
}

func TestTCPConcurrentSendersOneConn(t *testing.T) {
	const senders, perSender = 8, 25
	received := make(chan string, senders*perSender)
	srv, err := Serve("127.0.0.1:0", func(_ *Conn, m Message) {
		a, ok := m.Body.(*Ack)
		if !ok {
			received <- fmt.Sprintf("corrupt body %T", m.Body)
			return
		}
		received <- a.Ref
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				ref := fmt.Sprintf("s%d-%d", i, j)
				if err := c.Send(Message{From: "/c", Body: Ack{Ref: ref, OK: true}}); err != nil {
					received <- "send error: " + err.Error()
					return
				}
			}
		}(i)
	}
	wg.Wait()

	want := make(map[string]bool, senders*perSender)
	for i := 0; i < senders; i++ {
		for j := 0; j < perSender; j++ {
			want[fmt.Sprintf("s%d-%d", i, j)] = true
		}
	}
	for n := 0; n < senders*perSender; n++ {
		select {
		case ref := <-received:
			if !want[ref] {
				t.Fatalf("message %d: unexpected or duplicate %q", n, ref)
			}
			delete(want, ref)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d messages arrived; missing e.g. %v", n, senders*perSender, firstKey(want))
		}
	}
}

func firstKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

func TestTCPRecvErrorOnPeerClose(t *testing.T) {
	// Server hangs up as soon as the first message arrives; the client's
	// blocked Recv must fail rather than hang.
	srv, err := Serve("127.0.0.1:0", func(c *Conn, _ Message) { _ = c.Close() })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(Message{From: "/c", Body: Ack{Ref: "bye"}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil after peer close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv not unblocked by peer close")
	}
}

func TestTCPConnMetricsCountTraffic(t *testing.T) {
	_, c := echoServer(t)
	reg := telemetry.NewRegistry(nil)
	c.SetMetrics(reg)
	const n = 5
	for i := 0; i < n; i++ {
		if err := c.Send(Message{From: "/c", Body: Query{Ref: fmt.Sprintf("q%d", i)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("msg.tcp.sent").Value(); got != n {
		t.Errorf("msg.tcp.sent = %d, want %d", got, n)
	}
	if got := reg.Counter("msg.tcp.received").Value(); got != n {
		t.Errorf("msg.tcp.received = %d, want %d", got, n)
	}
	if got := reg.Counter("msg.tcp.sent.query").Value(); got != n {
		t.Errorf("msg.tcp.sent.query = %d, want %d", got, n)
	}
	if reg.Counter("msg.tcp.sent_bytes").Value() == 0 || reg.Counter("msg.tcp.recv_bytes").Value() == 0 {
		t.Error("byte counters did not advance")
	}
}
