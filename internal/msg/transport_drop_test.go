package msg

import (
	"errors"
	"strings"
	"testing"
)

// TestDropLoggerStructuredReport verifies the invalid-envelope drop path
// reports src/dest/kind through the pluggable hook instead of (not in
// addition to) the textual log line.
func TestDropLoggerStructuredReport(t *testing.T) {
	nt, err := NewNetTransport("h1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	var lines []string
	nt.SetLogf(func(format string, args ...any) {
		lines = append(lines, format)
	})
	var drops []DropInfo
	nt.SetDropLogger(func(d DropInfo) { drops = append(drops, d) })

	// A directive without an action decodes fine but fails Validate.
	bad := Message{From: "/h1/coord", Body: Directive{Target: "frame_skip"}}
	err = nt.Send("/h1/agent", bad)
	var se *SendError
	if !errors.As(err, &se) || se.Kind != ErrInvalid {
		t.Fatalf("send error = %v, want ErrInvalid SendError", err)
	}

	if len(drops) != 1 {
		t.Fatalf("drop reports = %d, want 1", len(drops))
	}
	d := drops[0]
	if d.Node != "h1" || d.From != "/h1/coord" || d.To != "/h1/agent" || d.Kind != "directive" {
		t.Errorf("DropInfo = %+v, want node h1, /h1/coord -> /h1/agent, kind directive", d)
	}
	if d.Err == nil {
		t.Error("DropInfo.Err is nil")
	}
	if nt.DroppedInvalid() != 1 {
		t.Errorf("DroppedInvalid = %d, want 1", nt.DroppedInvalid())
	}
	if len(lines) != 0 {
		t.Errorf("structured hook set, but textual log fired: %q", lines)
	}

	// Clearing the hook restores the textual line, which names the
	// endpoints and kind.
	nt.SetDropLogger(nil)
	_ = nt.Send("/h1/agent", bad)
	if len(drops) != 1 {
		t.Fatalf("cleared hook still fired: %d reports", len(drops))
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "%s -> %s") {
		t.Errorf("fallback log line = %q, want src -> dest format", lines)
	}

	// A body type the envelope codec does not know reports kind "?".
	nt.SetDropLogger(func(d DropInfo) { drops = append(drops, d) })
	_ = nt.Send("/h1/agent", Message{From: "/h1/coord", Body: struct{ X int }{1}})
	if len(drops) != 2 || drops[1].Kind != "?" {
		t.Fatalf("unknown body kind = %+v, want ?", drops)
	}
}
