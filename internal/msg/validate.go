package msg

import "fmt"

// Validate checks the semantic invariants a decoded management message
// must satisfy before a handler may see it: a known body type and the
// per-type fields the managers dereference unconditionally. Transports
// call it after decoding (and on local fast paths) so a malformed-but-
// well-formed-JSON frame is logged and dropped with a counter instead of
// reaching a handler that would misbehave on it.
func Validate(m Message) error {
	switch b := m.Body.(type) {
	case Register, *Register, PolicySet, *PolicySet, Report, *Report,
		Ack, *Ack, Nack, *Nack:
		return nil
	case Violation:
		return validateViolation(b)
	case *Violation:
		return validateViolation(*b)
	case Alarm:
		return validateAlarm(b)
	case *Alarm:
		return validateAlarm(*b)
	case Query:
		return validateQuery(b)
	case *Query:
		return validateQuery(*b)
	case Directive:
		return validateDirective(b)
	case *Directive:
		return validateDirective(*b)
	case Heartbeat:
		return validateHeartbeat(b)
	case *Heartbeat:
		return validateHeartbeat(*b)
	case AlarmBatch:
		return validateAlarmBatch(b)
	case *AlarmBatch:
		return validateAlarmBatch(*b)
	case TelemetrySummary:
		return validateTelemetrySummary(b)
	case *TelemetrySummary:
		return validateTelemetrySummary(*b)
	case PolicyDelta:
		return validatePolicyDelta(b)
	case *PolicyDelta:
		return validatePolicyDelta(*b)
	default:
		return fmt.Errorf("msg: unknown body type %T", m.Body)
	}
}

func validateViolation(v Violation) error {
	if v.Policy == "" {
		return fmt.Errorf("msg: violation without a policy name")
	}
	if v.ID.PID <= 0 {
		return fmt.Errorf("msg: violation with non-positive pid %d", v.ID.PID)
	}
	return nil
}

func validateAlarm(a Alarm) error {
	if a.Policy == "" {
		return fmt.Errorf("msg: alarm without a policy name")
	}
	if a.ID.PID <= 0 {
		return fmt.Errorf("msg: alarm with non-positive pid %d", a.ID.PID)
	}
	return nil
}

func validateQuery(q Query) error {
	if len(q.Keys) == 0 {
		return fmt.Errorf("msg: query without keys")
	}
	return nil
}

func validateDirective(d Directive) error {
	if d.Action == "" {
		return fmt.Errorf("msg: directive without an action")
	}
	return nil
}

func validateHeartbeat(h Heartbeat) error {
	if h.ID.PID <= 0 {
		return fmt.Errorf("msg: heartbeat with non-positive pid %d", h.ID.PID)
	}
	return nil
}

func validateAlarmBatch(b AlarmBatch) error {
	if len(b.Alarms) == 0 && len(b.Summary) == 0 {
		return fmt.Errorf("msg: empty alarm batch")
	}
	for i, e := range b.Alarms {
		if err := validateAlarm(e.Alarm); err != nil {
			return fmt.Errorf("msg: batch entry %d: %w", i, err)
		}
		if e.Count < 1 {
			return fmt.Errorf("msg: batch entry %d with count %d", i, e.Count)
		}
	}
	return nil
}

func validatePolicyDelta(d PolicyDelta) error {
	if d.Executable == "" {
		return fmt.Errorf("msg: policy delta without an executable")
	}
	if d.Generation == 0 {
		return fmt.Errorf("msg: policy delta with generation 0")
	}
	if d.Prev >= d.Generation {
		return fmt.Errorf("msg: policy delta generation %d not after prev %d",
			d.Generation, d.Prev)
	}
	switch d.Scope {
	case "canary", "fleet", "rollback":
	default:
		return fmt.Errorf("msg: policy delta with unknown scope %q", d.Scope)
	}
	if d.Scope == "canary" && len(d.Hosts) == 0 {
		return fmt.Errorf("msg: canary policy delta without hosts")
	}
	return nil
}

func validateTelemetrySummary(t TelemetrySummary) error {
	if t.Tier == "" {
		return fmt.Errorf("msg: telemetry summary without a tier")
	}
	if t.Source == "" {
		return fmt.Errorf("msg: telemetry summary without a source")
	}
	for i, s := range t.Sketches {
		if s.Name == "" {
			return fmt.Errorf("msg: summary sketch %d without a name", i)
		}
		// A sketch's total must equal its buckets, or merging it would
		// corrupt the aggregate's count arithmetic.
		total := s.Sketch.Zero
		for _, c := range s.Sketch.Counts {
			total += c
		}
		if total != s.Sketch.Count {
			return fmt.Errorf("msg: summary sketch %q count %d != bucket total %d",
				s.Name, s.Sketch.Count, total)
		}
	}
	return nil
}
