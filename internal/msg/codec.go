package msg

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"softqos/internal/telemetry"
)

// WireFormat selects how a transport encodes management frames. The
// JSON-lines format is the compatibility default; the binary format is
// the length-prefixed fast path negotiated between peers that both
// support it (see docs/WIRE.md for the layout and negotiation rules).
type WireFormat int

const (
	// WireJSON is one JSON envelope per newline-terminated line — the
	// original wire format, readable by every peer.
	WireJSON WireFormat = iota
	// WireBinary is the length-prefixed binary frame: magic byte,
	// version byte, uvarint payload length, payload. A binary frame can
	// never be confused with a JSON line because the magic byte is not
	// valid leading JSON.
	WireBinary
)

func (f WireFormat) String() string {
	if f == WireBinary {
		return "binary"
	}
	return "json"
}

const (
	// binMagic opens every binary frame. 0xBF is not a valid first byte
	// of UTF-8 JSON text, so receivers can sniff the format per frame.
	binMagic = 0xBF
	// binVersion is the current binary payload layout version.
	binVersion = 1
	// MaxFrameBytes caps a binary frame's declared payload length.
	// Frames claiming more are rejected before any allocation, so a
	// corrupt or hostile length prefix cannot balloon memory.
	MaxFrameBytes = 1 << 20
)

// Typed decode errors. Transports and fuzzers distinguish these from
// generic decode failures: a truncated frame on a stream means "read
// more", while trailing bytes or a bad version mean the peer is broken.
var (
	// ErrNotBinary: the buffer does not start with the binary magic.
	ErrNotBinary = errors.New("msg: not a binary frame")
	// ErrBadVersion: the frame's version byte is unknown to this node.
	ErrBadVersion = errors.New("msg: unsupported binary frame version")
	// ErrFrameTooBig: the declared payload length exceeds MaxFrameBytes.
	ErrFrameTooBig = errors.New("msg: binary frame exceeds size cap")
	// ErrTruncated: the buffer ends before the declared frame does.
	ErrTruncated = errors.New("msg: truncated binary frame")
	// ErrTrailingBytes: bytes follow a complete frame in a buffer that
	// should contain exactly one frame.
	ErrTrailingBytes = errors.New("msg: trailing bytes after binary frame")
	// ErrBadKind: the payload names a message kind this node lacks.
	ErrBadKind = errors.New("msg: unknown binary message kind")
)

// Binary payload kind bytes, one per management message type.
const (
	kindRegister         = 1
	kindPolicySet        = 2
	kindViolation        = 3
	kindQuery            = 4
	kindReport           = 5
	kindAlarm            = 6
	kindDirective        = 7
	kindAck              = 8
	kindNack             = 9
	kindHeartbeat        = 10
	kindAlarmBatch       = 11
	kindTelemetrySummary = 12
	kindPolicyDelta      = 13
)

func binKind(body any) (byte, error) {
	switch body.(type) {
	case Register, *Register:
		return kindRegister, nil
	case PolicySet, *PolicySet:
		return kindPolicySet, nil
	case Violation, *Violation:
		return kindViolation, nil
	case Query, *Query:
		return kindQuery, nil
	case Report, *Report:
		return kindReport, nil
	case Alarm, *Alarm:
		return kindAlarm, nil
	case Directive, *Directive:
		return kindDirective, nil
	case Ack, *Ack:
		return kindAck, nil
	case Nack, *Nack:
		return kindNack, nil
	case Heartbeat, *Heartbeat:
		return kindHeartbeat, nil
	case AlarmBatch, *AlarmBatch:
		return kindAlarmBatch, nil
	case TelemetrySummary, *TelemetrySummary:
		return kindTelemetrySummary, nil
	case PolicyDelta, *PolicyDelta:
		return kindPolicyDelta, nil
	default:
		return 0, fmt.Errorf("msg: unknown body type %T", body)
	}
}

// wireBufPool recycles frame buffers between sends. Transports encode
// into a pooled buffer, write it to the socket (or just read its length
// for byte accounting) and return it, so the steady-state send path
// allocates nothing for the envelope.
var wireBufPool = sync.Pool{New: func() any { return make([]byte, 0, 512) }}

func getWireBuf() []byte  { return wireBufPool.Get().([]byte) }
func putWireBuf(b []byte) { wireBufPool.Put(b[:0]) } //nolint:staticcheck // slice header churn is fine here

// keyPool recycles the scratch slices used to sort map keys during
// binary encoding (binary maps are key-sorted so equal messages encode
// to equal bytes on every node).
var keyPool = sync.Pool{New: func() any { return make([]string, 0, 16) }}

// MarshalWire encodes one routed frame in the given format. JSON frames
// are the bare line (no trailing newline); binary frames include the
// full magic/version/length header.
func MarshalWire(f WireFormat, to string, m Message) ([]byte, error) {
	data, err := appendWire(nil, f, to, m)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// appendWire appends one encoded frame to dst and returns the extended
// slice. It is the shared encoder behind both transports' send paths.
func appendWire(dst []byte, f WireFormat, to string, m Message) ([]byte, error) {
	if f == WireBinary {
		return appendBinaryFrame(dst, to, m)
	}
	return appendJSONFrame(dst, to, m)
}

// UnmarshalWire decodes one complete frame of either format, sniffing
// the format from the first byte. The buffer must contain exactly one
// frame; binary frames with trailing bytes return ErrTrailingBytes.
func UnmarshalWire(data []byte) (to string, m Message, err error) {
	if len(data) > 0 && data[0] == binMagic {
		return unmarshalBinaryFrame(data)
	}
	return unmarshalRouted(data)
}

// ---------------------------------------------------------------------------
// JSON fast path
//
// The original encoder marshaled the body into a json.RawMessage and then
// re-marshaled the whole envelope, paying a second reflection pass and a
// compact-copy of the body bytes. appendJSONFrame hand-builds the envelope
// around a single body marshal, byte-identical to the old output (the
// determinism goldens pin msg.bus.bytes, so identity is load-bearing).

// appendJSONFrame appends the JSON envelope for m to dst.
func appendJSONFrame(dst []byte, to string, m Message) ([]byte, error) {
	tag, err := typeTag(m.Body)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(m.Body)
	if err != nil {
		return nil, err
	}
	dst = append(dst, `{"from":`...)
	dst = appendJSONString(dst, m.From)
	if to != "" {
		dst = append(dst, `,"to":`...)
		dst = appendJSONString(dst, to)
	}
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, tag)
	if m.Trace.Valid() {
		dst = append(dst, `,"trace":{"trace_id":`...)
		dst = appendJSONString(dst, m.Trace.TraceID)
		dst = append(dst, `,"span":`...)
		dst = strconv.AppendInt(dst, int64(m.Trace.Span), 10)
		dst = append(dst, '}')
	}
	dst = append(dst, `,"body":`...)
	dst = append(dst, body...)
	dst = append(dst, '}')
	return dst, nil
}

// appendJSONString appends s as a JSON string. Plain ASCII (the
// overwhelmingly common case for management addresses and type tags) is
// copied directly; anything needing escapes falls back to json.Marshal
// so the output matches encoding/json byte-for-byte in every case.
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil { // cannot happen for a string
				return append(append(dst, '"'), '"')
			}
			return append(dst, enc...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// ---------------------------------------------------------------------------
// Binary encode

// appendBinaryFrame appends the framed binary encoding of m to dst.
func appendBinaryFrame(dst []byte, to string, m Message) ([]byte, error) {
	payload := getWireBuf()
	payload, err := appendBinaryPayload(payload[:0], to, m)
	if err != nil {
		putWireBuf(payload)
		return nil, err
	}
	dst = append(dst, binMagic, binVersion)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	putWireBuf(payload)
	return dst, nil
}

func appendBinaryPayload(dst []byte, to string, m Message) ([]byte, error) {
	kind, err := binKind(m.Body)
	if err != nil {
		return nil, err
	}
	dst = append(dst, kind)
	dst = appendBinString(dst, m.From)
	dst = appendBinString(dst, to)
	if m.Trace.Valid() {
		dst = append(dst, 1)
		dst = appendBinString(dst, m.Trace.TraceID)
		dst = binary.AppendVarint(dst, int64(m.Trace.Span))
	} else {
		dst = append(dst, 0)
	}
	switch b := m.Body.(type) {
	case Register:
		return appendBinRegister(dst, &b), nil
	case *Register:
		return appendBinRegister(dst, b), nil
	case PolicySet:
		return appendBinPolicySet(dst, &b), nil
	case *PolicySet:
		return appendBinPolicySet(dst, b), nil
	case Violation:
		return appendBinViolation(dst, &b), nil
	case *Violation:
		return appendBinViolation(dst, b), nil
	case Query:
		return appendBinQuery(dst, &b), nil
	case *Query:
		return appendBinQuery(dst, b), nil
	case Report:
		return appendBinReport(dst, &b), nil
	case *Report:
		return appendBinReport(dst, b), nil
	case Alarm:
		return appendBinAlarm(dst, &b), nil
	case *Alarm:
		return appendBinAlarm(dst, b), nil
	case Directive:
		return appendBinDirective(dst, &b), nil
	case *Directive:
		return appendBinDirective(dst, b), nil
	case Ack:
		return appendBinAck(dst, &b), nil
	case *Ack:
		return appendBinAck(dst, b), nil
	case Nack:
		return appendBinNack(dst, &b), nil
	case *Nack:
		return appendBinNack(dst, b), nil
	case Heartbeat:
		return appendBinHeartbeat(dst, &b), nil
	case *Heartbeat:
		return appendBinHeartbeat(dst, b), nil
	case AlarmBatch:
		return appendBinAlarmBatch(dst, &b), nil
	case *AlarmBatch:
		return appendBinAlarmBatch(dst, b), nil
	case TelemetrySummary:
		return appendBinTelemetrySummary(dst, &b), nil
	case *TelemetrySummary:
		return appendBinTelemetrySummary(dst, b), nil
	case PolicyDelta:
		return appendBinPolicyDelta(dst, &b), nil
	case *PolicyDelta:
		return appendBinPolicyDelta(dst, b), nil
	}
	return nil, fmt.Errorf("msg: unknown body type %T", m.Body)
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBinF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBinBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendBinMap encodes a string→float64 map with keys sorted, so the
// encoding is a pure function of the map's contents.
func appendBinMap(dst []byte, m map[string]float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	if len(m) == 0 {
		return dst
	}
	keys := keyPool.Get().([]string)[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendBinString(dst, k)
		dst = appendBinF64(dst, m[k])
	}
	keyPool.Put(keys[:0]) //nolint:staticcheck
	return dst
}

func appendBinStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendBinString(dst, s)
	}
	return dst
}

func appendBinIdentity(dst []byte, id *Identity) []byte {
	dst = appendBinString(dst, id.Host)
	dst = binary.AppendVarint(dst, int64(id.PID))
	dst = appendBinString(dst, id.Executable)
	dst = appendBinString(dst, id.Application)
	return appendBinString(dst, id.UserRole)
}

func appendBinRegister(dst []byte, b *Register) []byte {
	dst = appendBinIdentity(dst, &b.ID)
	return appendBinStrings(dst, b.Sensors)
}

func appendBinPolicySet(dst []byte, b *PolicySet) []byte {
	dst = appendBinIdentity(dst, &b.ID)
	return appendBinPolicies(dst, b.Policies)
}

// appendBinPolicies encodes a PolicySpec list — the shared body of
// PolicySet and PolicyDelta frames.
func appendBinPolicies(dst []byte, policies []PolicySpec) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(policies)))
	for i := range policies {
		p := &policies[i]
		dst = appendBinString(dst, p.Name)
		dst = appendBinString(dst, p.Connective)
		dst = binary.AppendUvarint(dst, uint64(len(p.Conditions)))
		for _, c := range p.Conditions {
			dst = appendBinString(dst, c.Attribute)
			dst = appendBinString(dst, c.Sensor)
			dst = appendBinString(dst, c.Op)
			dst = appendBinF64(dst, c.Value)
		}
		dst = binary.AppendUvarint(dst, uint64(len(p.Actions)))
		for _, a := range p.Actions {
			dst = appendBinString(dst, a.Target)
			dst = appendBinString(dst, a.Op)
			dst = appendBinStrings(dst, a.Args)
		}
	}
	return dst
}

func appendBinPolicyDelta(dst []byte, b *PolicyDelta) []byte {
	dst = binary.AppendUvarint(dst, b.Generation)
	dst = binary.AppendUvarint(dst, b.Prev)
	dst = appendBinString(dst, b.Executable)
	dst = appendBinString(dst, b.Scope)
	dst = appendBinStrings(dst, b.Hosts)
	dst = appendBinPolicies(dst, b.Policies)
	return appendBinString(dst, b.Reason)
}

func appendBinViolation(dst []byte, b *Violation) []byte {
	dst = appendBinIdentity(dst, &b.ID)
	dst = appendBinString(dst, b.Policy)
	dst = appendBinMap(dst, b.Readings)
	return appendBinBool(dst, b.Overshoot)
}

func appendBinQuery(dst []byte, b *Query) []byte {
	dst = appendBinString(dst, b.From)
	dst = appendBinStrings(dst, b.Keys)
	return appendBinString(dst, b.Ref)
}

func appendBinReport(dst []byte, b *Report) []byte {
	dst = appendBinString(dst, b.Host)
	dst = appendBinMap(dst, b.Values)
	return appendBinString(dst, b.Ref)
}

func appendBinAlarm(dst []byte, b *Alarm) []byte {
	dst = appendBinIdentity(dst, &b.ID)
	dst = appendBinString(dst, b.Policy)
	dst = appendBinMap(dst, b.Readings)
	return appendBinString(dst, b.Suspect)
}

func appendBinDirective(dst []byte, b *Directive) []byte {
	dst = appendBinString(dst, b.From)
	dst = appendBinString(dst, b.Action)
	dst = appendBinString(dst, b.Target)
	return appendBinF64(dst, b.Amount)
}

func appendBinAck(dst []byte, b *Ack) []byte {
	dst = appendBinString(dst, b.Ref)
	dst = appendBinBool(dst, b.OK)
	return appendBinString(dst, b.Err)
}

func appendBinNack(dst []byte, b *Nack) []byte {
	dst = appendBinIdentity(dst, &b.ID)
	dst = appendBinString(dst, b.Ref)
	return appendBinString(dst, b.Reason)
}

func appendBinHeartbeat(dst []byte, b *Heartbeat) []byte {
	dst = appendBinIdentity(dst, &b.ID)
	return binary.AppendUvarint(dst, b.Seq)
}

func appendBinAlarmBatch(dst []byte, b *AlarmBatch) []byte {
	dst = appendBinString(dst, b.Tier)
	dst = binary.AppendUvarint(dst, uint64(len(b.Alarms)))
	for i := range b.Alarms {
		e := &b.Alarms[i]
		dst = appendBinAlarm(dst, &e.Alarm)
		dst = binary.AppendVarint(dst, int64(e.Count))
		dst = binary.AppendVarint(dst, int64(e.Severity))
	}
	return appendBinMap(dst, b.Summary)
}

func appendBinTelemetrySummary(dst []byte, b *TelemetrySummary) []byte {
	dst = appendBinString(dst, b.Tier)
	dst = appendBinString(dst, b.Source)
	dst = binary.AppendUvarint(dst, b.Seq)
	dst = binary.AppendUvarint(dst, b.Hosts)
	dst = appendBinMap(dst, b.Counters)
	dst = appendBinMap(dst, b.Maxima)
	dst = binary.AppendUvarint(dst, uint64(len(b.Sketches)))
	for i := range b.Sketches {
		s := &b.Sketches[i]
		dst = appendBinString(dst, s.Name)
		dst = binary.AppendUvarint(dst, s.Sketch.Count)
		dst = appendBinF64(dst, s.Sketch.Sum)
		dst = appendBinF64(dst, s.Sketch.Min)
		dst = appendBinF64(dst, s.Sketch.Max)
		dst = binary.AppendUvarint(dst, s.Sketch.Zero)
		dst = binary.AppendVarint(dst, int64(s.Sketch.Base))
		dst = binary.AppendUvarint(dst, uint64(len(s.Sketch.Counts)))
		for _, c := range s.Sketch.Counts {
			dst = binary.AppendUvarint(dst, c)
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// Binary decode

// unmarshalBinaryFrame decodes one complete framed buffer: header checks
// first, then the payload. Every length is validated against the bytes
// actually present before any allocation sized from it.
func unmarshalBinaryFrame(data []byte) (string, Message, error) {
	if len(data) == 0 || data[0] != binMagic {
		return "", Message{}, ErrNotBinary
	}
	if len(data) < 2 {
		return "", Message{}, ErrTruncated
	}
	if data[1] != binVersion {
		return "", Message{}, fmt.Errorf("%w: %d", ErrBadVersion, data[1])
	}
	n, used := binary.Uvarint(data[2:])
	if used <= 0 {
		return "", Message{}, ErrTruncated
	}
	if n > MaxFrameBytes {
		return "", Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	payload := data[2+used:]
	if uint64(len(payload)) < n {
		return "", Message{}, ErrTruncated
	}
	if uint64(len(payload)) > n {
		return "", Message{}, fmt.Errorf("%w: %d extra", ErrTrailingBytes, uint64(len(payload))-n)
	}
	return unmarshalBinaryPayload(payload)
}

// binReader is a bounds-checked cursor over a binary payload. The first
// decode error sticks; every later read returns zero values, so decoders
// can run straight-line and check err once.
type binReader struct {
	buf []byte
	pos int
	err error
}

func (r *binReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *binReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail(ErrTruncated)
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.pos < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

func (r *binReader) boolean() bool { return r.u8() != 0 }

func (r *binReader) f64map() map[string]float64 {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	// Each entry costs at least 1 (key length) + 8 (value) bytes, so a
	// count the remaining bytes cannot hold is corrupt, not a big alloc.
	if n > uint64(len(r.buf)-r.pos)/9 {
		r.fail(ErrTruncated)
		return nil
	}
	m := make(map[string]float64, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.str()
		m[k] = r.f64()
	}
	if r.err != nil {
		return nil
	}
	return m
}

func (r *binReader) strs() []string {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) { // each entry costs >= 1 byte
		r.fail(ErrTruncated)
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		ss = append(ss, r.str())
	}
	if r.err != nil {
		return nil
	}
	return ss
}

// policies decodes the PolicySpec list shared by PolicySet and
// PolicyDelta payloads, with the same per-entry minimum-byte-cost
// bounds checks as every other repeated structure.
func (r *binReader) policies() []PolicySpec {
	np := r.uvarint()
	if r.err != nil || np == 0 {
		return nil
	}
	if np > uint64(len(r.buf)-r.pos) { // each policy costs >= 1 byte
		r.fail(ErrTruncated)
		return nil
	}
	var policies []PolicySpec
	for i := uint64(0); i < np && r.err == nil; i++ {
		p := PolicySpec{Name: r.str(), Connective: r.str()}
		nc := r.uvarint()
		if nc > uint64(len(r.buf)-r.pos)/11 { // >= 3 len bytes + 8 value bytes
			r.fail(ErrTruncated)
			break
		}
		for j := uint64(0); j < nc && r.err == nil; j++ {
			p.Conditions = append(p.Conditions, CondSpec{
				Attribute: r.str(), Sensor: r.str(), Op: r.str(), Value: r.f64()})
		}
		na := r.uvarint()
		if na > uint64(len(r.buf)-r.pos)/3 { // >= 3 len bytes
			r.fail(ErrTruncated)
			break
		}
		for j := uint64(0); j < na && r.err == nil; j++ {
			p.Actions = append(p.Actions, ActionSpec{
				Target: r.str(), Op: r.str(), Args: r.strs()})
		}
		policies = append(policies, p)
	}
	if r.err != nil {
		return nil
	}
	return policies
}

func (r *binReader) identity() Identity {
	return Identity{
		Host:        r.str(),
		PID:         int(r.varint()),
		Executable:  r.str(),
		Application: r.str(),
		UserRole:    r.str(),
	}
}

func unmarshalBinaryPayload(payload []byte) (string, Message, error) {
	r := &binReader{buf: payload}
	kind := r.u8()
	from := r.str()
	to := r.str()
	var tc telemetry.TraceContext
	if r.boolean() {
		tc.TraceID = r.str()
		tc.Span = int(r.varint())
	}
	var body any
	switch kind {
	case kindRegister:
		body = &Register{ID: r.identity(), Sensors: r.strs()}
	case kindPolicySet:
		body = &PolicySet{ID: r.identity(), Policies: r.policies()}
	case kindPolicyDelta:
		body = &PolicyDelta{Generation: r.uvarint(), Prev: r.uvarint(),
			Executable: r.str(), Scope: r.str(), Hosts: r.strs(),
			Policies: r.policies(), Reason: r.str()}
	case kindViolation:
		body = &Violation{ID: r.identity(), Policy: r.str(), Readings: r.f64map(), Overshoot: r.boolean()}
	case kindQuery:
		body = &Query{From: r.str(), Keys: r.strs(), Ref: r.str()}
	case kindReport:
		body = &Report{Host: r.str(), Values: r.f64map(), Ref: r.str()}
	case kindAlarm:
		body = &Alarm{ID: r.identity(), Policy: r.str(), Readings: r.f64map(), Suspect: r.str()}
	case kindDirective:
		body = &Directive{From: r.str(), Action: r.str(), Target: r.str(), Amount: r.f64()}
	case kindAck:
		body = &Ack{Ref: r.str(), OK: r.boolean(), Err: r.str()}
	case kindNack:
		body = &Nack{ID: r.identity(), Ref: r.str(), Reason: r.str()}
	case kindHeartbeat:
		body = &Heartbeat{ID: r.identity(), Seq: r.uvarint()}
	case kindAlarmBatch:
		ab := &AlarmBatch{Tier: r.str()}
		na := r.uvarint()
		// Each entry costs at least an identity (5 string lengths + pid),
		// policy + readings + suspect lengths, and two varints: 11 bytes.
		if na > uint64(len(r.buf)-r.pos)/11 {
			r.fail(ErrTruncated)
		} else {
			for i := uint64(0); i < na && r.err == nil; i++ {
				ab.Alarms = append(ab.Alarms, BatchedAlarm{
					Alarm: Alarm{ID: r.identity(), Policy: r.str(),
						Readings: r.f64map(), Suspect: r.str()},
					Count:    int(r.varint()),
					Severity: int(r.varint()),
				})
			}
		}
		ab.Summary = r.f64map()
		body = ab
	case kindTelemetrySummary:
		ts := &TelemetrySummary{Tier: r.str(), Source: r.str(),
			Seq: r.uvarint(), Hosts: r.uvarint(),
			Counters: r.f64map(), Maxima: r.f64map()}
		ns := r.uvarint()
		// Each sketch costs at least a name length, a count, three f64s
		// (sum/min/max), zero, base and a bucket count: 29 bytes.
		if ns > uint64(len(r.buf)-r.pos)/29 {
			r.fail(ErrTruncated)
		} else {
			for i := uint64(0); i < ns && r.err == nil; i++ {
				s := telemetry.NamedSketchSnapshot{Name: r.str()}
				s.Sketch.Count = r.uvarint()
				s.Sketch.Sum = r.f64()
				s.Sketch.Min = r.f64()
				s.Sketch.Max = r.f64()
				s.Sketch.Zero = r.uvarint()
				s.Sketch.Base = int(r.varint())
				nc := r.uvarint()
				if nc > uint64(len(r.buf)-r.pos) { // each bucket costs >= 1 byte
					r.fail(ErrTruncated)
					break
				}
				if nc > 0 {
					s.Sketch.Counts = make([]uint64, 0, nc)
					for j := uint64(0); j < nc && r.err == nil; j++ {
						s.Sketch.Counts = append(s.Sketch.Counts, r.uvarint())
					}
				}
				ts.Sketches = append(ts.Sketches, s)
			}
		}
		body = ts
	default:
		if r.err == nil {
			r.fail(fmt.Errorf("%w: %d", ErrBadKind, kind))
		}
	}
	if r.err != nil {
		return "", Message{}, r.err
	}
	if r.pos != len(r.buf) {
		return "", Message{}, fmt.Errorf("%w: %d extra payload bytes", ErrTrailingBytes, len(r.buf)-r.pos)
	}
	return to, Message{From: from, Trace: tc, Body: body}, nil
}
