package msg

import "time"

// Backoff is a bounded jittered-exponential retry schedule. Attempt 0
// is the initial try (no delay); attempt n >= 1 waits
// min(Base*Factor^(n-1), Cap), spread by ±Jitter/2 around that value.
// After Attempts total tries the sender gives up.
type Backoff struct {
	Base     time.Duration // delay before the first retry
	Factor   float64       // multiplier per further retry (>= 1)
	Cap      time.Duration // upper bound on any single delay
	Attempts int           // total tries including the first (>= 1)
	Jitter   float64       // fraction of the delay randomized, in [0, 1]
}

// DefaultBackoff is the schedule NetTransport retries with unless
// overridden: 4 tries, 2ms/4ms/8ms nominal delays, capped at 50ms,
// half-width jitter. Worst case a Send blocks the caller ~15ms — short
// enough for the serializing dispatcher, long enough to ride out a
// manager restart on loopback.
var DefaultBackoff = Backoff{
	Base:     2 * time.Millisecond,
	Factor:   2.0,
	Cap:      50 * time.Millisecond,
	Attempts: 4,
	Jitter:   0.5,
}

// Delay returns how long to wait before the given attempt (1-based
// retry index; attempt <= 0 returns 0). u is a uniform random sample in
// [0, 1) supplied by the caller, keeping the schedule itself pure and
// table-testable: the jittered delay is d*(1 - Jitter/2) + d*Jitter*u
// where d is the capped exponential value.
func (b Backoff) Delay(attempt int, u float64) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if b.Cap > 0 && d >= float64(b.Cap) {
			d = float64(b.Cap)
			break
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 {
		d = d*(1-b.Jitter/2) + d*b.Jitter*u
	}
	return time.Duration(d)
}

// Exhausted reports whether the schedule allows no further try after
// the given number of completed tries.
func (b Backoff) Exhausted(tries int) bool {
	n := b.Attempts
	if n < 1 {
		n = 1
	}
	return tries >= n
}
