package msg

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// The transport conformance suite: every Transport implementation —
// the in-simulation Bus and the live TCP NetTransport — must agree on
// the semantics the managers rely on: bound handlers receive exactly
// the messages sent to their address, per-type send counters are
// published under the transport's metric prefix, and sending to an
// address nobody bound is a visible error, not a silent drop.

// transportCase adapts one implementation to the suite. pump flushes
// in-flight deliveries (advances the virtual clock for the Bus, drains
// the dispatcher for the NetTransport).
type transportCase struct {
	name       string
	prefix     string // metric namespace: "msg.bus" or "msg.net"
	concurrent bool   // safe for concurrent Send (the Bus is sim-single-threaded)
	open       func(t *testing.T) (tr Transport, setMetrics func(*telemetry.Registry), pump func())
}

var transportCases = []transportCase{
	{
		name:   "bus",
		prefix: "msg.bus",
		open: func(t *testing.T) (Transport, func(*telemetry.Registry), func()) {
			s := sim.New(1)
			b := NewBus(s, time.Millisecond, 5*time.Millisecond)
			return b, b.SetMetrics, func() { s.RunFor(time.Second) }
		},
	},
	{
		name:       "net",
		prefix:     "msg.net",
		concurrent: true,
		open: func(t *testing.T) (Transport, func(*telemetry.Registry), func()) {
			nt, err := NewNetTransport("conf", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { nt.Close() })
			return nt, nt.SetMetrics, func() { nt.Sync(func() {}) }
		},
	},
}

// oneOfEach returns one message of every management type (the full
// typeTags set).
func oneOfEach() []Message {
	id := Identity{Host: "h", PID: 1, Executable: "x"}
	return []Message{
		{From: "/h/src", Body: Register{ID: id}},
		{From: "/h/src", Body: PolicySet{}},
		{From: "/h/src", Body: Violation{ID: id, Policy: "P"}},
		{From: "/h/src", Body: Query{From: "/h/src", Keys: []string{"cpu_load"}, Ref: "q9"}},
		{From: "/h/src", Body: Report{Host: "h", Ref: "q9"}},
		{From: "/h/src", Body: Alarm{ID: id, Policy: "P"}},
		{From: "/h/src", Body: Directive{Action: "actuate", Target: "frame_skip"}},
		{From: "/h/src", Body: Ack{Ref: "register"}},
		{From: "/h/src", Body: TelemetrySummary{Tier: "host", Source: "/h/src", Seq: 1,
			Counters: map[string]float64{"fleet.alarms_raised": 1}}},
		{From: "/h/src", Body: PolicyDelta{Generation: 2, Prev: 1,
			Executable: "x", Scope: "fleet"}},
	}
}

func TestTransportConformance(t *testing.T) {
	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("delivery", func(t *testing.T) {
				tr, _, pump := tc.open(t)
				var got []Message
				tr.Bind("/conf/sink", "conf", func(m Message) { got = append(got, m) })
				msgs := oneOfEach()
				for _, m := range msgs {
					if err := tr.Send("/conf/sink", m); err != nil {
						t.Fatalf("send %T: %v", m.Body, err)
					}
				}
				pump()
				if len(got) != len(msgs) {
					t.Fatalf("delivered %d of %d messages", len(got), len(msgs))
				}
				for i, m := range got {
					want, err := typeTag(msgs[i].Body)
					if err != nil {
						t.Fatal(err)
					}
					have, err := typeTag(m.Body)
					if err != nil {
						t.Fatal(err)
					}
					if have != want {
						t.Errorf("message %d: delivered %q, sent %q", i, have, want)
					}
					if m.From != "/h/src" {
						t.Errorf("message %d: From = %q", i, m.From)
					}
				}
			})

			t.Run("metrics", func(t *testing.T) {
				tr, setMetrics, pump := tc.open(t)
				reg := telemetry.NewRegistry(func() time.Duration { return 0 })
				setMetrics(reg)
				tr.Bind("/conf/sink", "conf", func(Message) {})
				msgs := oneOfEach()
				for _, m := range msgs {
					if err := tr.Send("/conf/sink", m); err != nil {
						t.Fatal(err)
					}
				}
				pump()
				for _, tag := range typeTags {
					if n := reg.Counter(tc.prefix + ".sent." + tag).Value(); n != 1 {
						t.Errorf("%s.sent.%s = %d, want 1", tc.prefix, tag, n)
					}
				}
				if n := reg.Counter(tc.prefix + ".sent").Value(); n != uint64(len(msgs)) {
					t.Errorf("%s.sent = %d, want %d", tc.prefix, n, len(msgs))
				}
				if n := reg.Counter(tc.prefix + ".delivered").Value(); n != uint64(len(msgs)) {
					t.Errorf("%s.delivered = %d, want %d", tc.prefix, n, len(msgs))
				}
				if n := reg.Counter(tc.prefix + ".bytes").Value(); n == 0 {
					t.Errorf("%s.bytes = 0 after %d sends", tc.prefix, len(msgs))
				}
			})

			t.Run("unbound", func(t *testing.T) {
				tr, _, pump := tc.open(t)
				if tr.Bound("/conf/nobody") {
					t.Error("fresh transport claims /conf/nobody is bound")
				}
				if err := tr.Send("/conf/nobody", Message{Body: Ack{}}); err == nil {
					t.Error("send to unbound management address did not error")
				}
				tr.Bind("/conf/nobody", "conf", func(Message) {})
				if !tr.Bound("/conf/nobody") {
					t.Error("address not bound after Bind")
				}
				if err := tr.Send("/conf/nobody", Message{Body: Ack{}}); err != nil {
					t.Errorf("send to bound address: %v", err)
				}
				pump()
				tr.Unbind("/conf/nobody")
				if tr.Bound("/conf/nobody") {
					t.Error("address still bound after Unbind")
				}
				if err := tr.Send("/conf/nobody", Message{Body: Ack{}}); err == nil {
					t.Error("send after Unbind did not error")
				}
			})

			t.Run("invalid", func(t *testing.T) {
				tr, setMetrics, pump := tc.open(t)
				reg := telemetry.NewRegistry(func() time.Duration { return 0 })
				setMetrics(reg)
				delivered := 0
				tr.Bind("/conf/sink", "conf", func(Message) { delivered++ })
				bad := []Message{
					{From: "/h/src", Body: Violation{Policy: "P"}},          // PID 0
					{From: "/h/src", Body: Violation{ID: Identity{PID: 4}}}, // no policy
					{From: "/h/src", Body: Alarm{ID: Identity{PID: 4}}},     // no policy
					{From: "/h/src", Body: Query{From: "/h/src", Ref: "q"}}, // no keys
					{From: "/h/src", Body: Directive{Target: "frame_skip"}}, // no action
				}
				for i, m := range bad {
					if err := tr.Send("/conf/sink", m); err == nil {
						t.Errorf("message %d (%T): invalid send did not error", i, m.Body)
					}
				}
				pump()
				if delivered != 0 {
					t.Errorf("handler received %d invalid messages", delivered)
				}
				if n := reg.Counter(tc.prefix + ".dropped_invalid").Value(); n != uint64(len(bad)) {
					t.Errorf("%s.dropped_invalid = %d, want %d", tc.prefix, n, len(bad))
				}
				// A valid message still goes through afterwards.
				if err := tr.Send("/conf/sink", Message{From: "/h/src", Body: Ack{}}); err != nil {
					t.Errorf("valid send after drops: %v", err)
				}
				pump()
				if delivered != 1 {
					t.Errorf("valid message not delivered after drops (delivered=%d)", delivered)
				}
			})

			t.Run("trace-context", func(t *testing.T) {
				tr, _, pump := tc.open(t)
				ctx := telemetry.TraceContext{TraceID: "/h/app/x/1#42", Span: 3}
				var got []Message
				tr.Bind("/conf/sink", "conf", func(m Message) { got = append(got, m) })
				withCtx := Message{From: "/h/src", Trace: ctx,
					Body: Violation{ID: Identity{Host: "h", PID: 1, Executable: "x"}, Policy: "P"}}
				without := Message{From: "/h/src", Body: Ack{Ref: "r"}}
				if err := tr.Send("/conf/sink", withCtx); err != nil {
					t.Fatal(err)
				}
				if err := tr.Send("/conf/sink", without); err != nil {
					t.Fatal(err)
				}
				pump()
				if len(got) != 2 {
					t.Fatalf("delivered %d of 2", len(got))
				}
				if got[0].Trace != ctx {
					t.Errorf("context not carried: got %+v, sent %+v", got[0].Trace, ctx)
				}
				if got[1].Trace.Valid() {
					t.Errorf("context invented on context-free message: %+v", got[1].Trace)
				}
				// The wire encoding itself must be transport-independent:
				// both transports move the same marshaled frame, so a
				// message with a context marshals byte-identically
				// everywhere, and one without a context marshals exactly
				// as it did before contexts existed.
				b1, err := marshalRouted("/conf/sink", withCtx)
				if err != nil {
					t.Fatal(err)
				}
				to, rt, err := unmarshalRouted(b1)
				if err != nil {
					t.Fatal(err)
				}
				if to != "/conf/sink" || rt.Trace != ctx {
					t.Errorf("round-trip: to=%q trace=%+v", to, rt.Trace)
				}
				b2, err := marshalRouted("/conf/sink", without)
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Contains(b2, []byte("trace")) {
					t.Errorf("context-free frame mentions trace: %s", b2)
				}
			})

			t.Run("concurrent", func(t *testing.T) {
				if !tc.concurrent {
					t.Skip("transport is single-threaded by design (driven by the simulator loop)")
				}
				tr, setMetrics, pump := tc.open(t)
				reg := telemetry.NewRegistry(func() time.Duration { return 0 })
				setMetrics(reg)
				var mu sync.Mutex
				perSender := make(map[string]int)
				tr.Bind("/conf/sink", "conf", func(m Message) {
					mu.Lock()
					perSender[m.From]++
					mu.Unlock()
				})
				const senders, each = 8, 50
				var wg sync.WaitGroup
				for s := 0; s < senders; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						from := fmt.Sprintf("/conf/sender-%d", s)
						for i := 0; i < each; i++ {
							if err := tr.Send("/conf/sink", Message{From: from,
								Body: Report{Ref: fmt.Sprintf("r%d", i)}}); err != nil {
								t.Errorf("sender %d: %v", s, err)
								return
							}
						}
					}(s)
				}
				wg.Wait()
				pump()
				mu.Lock()
				defer mu.Unlock()
				for s := 0; s < senders; s++ {
					from := fmt.Sprintf("/conf/sender-%d", s)
					if perSender[from] != each {
						t.Errorf("sender %d: delivered %d of %d", s, perSender[from], each)
					}
				}
				if n := reg.Counter(tc.prefix + ".delivered").Value(); n != senders*each {
					t.Errorf("delivered counter = %d, want %d", n, senders*each)
				}
			})
		})
	}
}
