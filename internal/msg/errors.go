package msg

import "fmt"

// SendErrorKind classifies why a transport send failed, so callers can
// decide whether retrying could help. Routing failures (no handler, no
// route) are permanent until topology changes; connection failures are
// transient — the peer may be restarting.
type SendErrorKind string

const (
	// ErrNoRoute: the destination resolves to no local handler, learned
	// reply route, static route, or dialable address.
	ErrNoRoute SendErrorKind = "no_route"
	// ErrClosed: this transport has been closed.
	ErrClosed SendErrorKind = "closed"
	// ErrConnLost: an established connection failed mid-send (peer went
	// away, broken pipe). The connection has been forgotten; a retry
	// will redial.
	ErrConnLost SendErrorKind = "conn_lost"
	// ErrDialFailed: dialing the destination's TCP address failed
	// (connection refused while the peer restarts, ...).
	ErrDialFailed SendErrorKind = "dial_failed"
	// ErrInvalid: the message failed Validate; retrying is pointless.
	ErrInvalid SendErrorKind = "invalid"
)

// SendError is the typed failure returned by NetTransport.Send (and by
// FaultTransport when simulating a crashed peer). Kind tells callers
// whether a retry is worthwhile; Err is the underlying cause.
type SendError struct {
	To   string
	Kind SendErrorKind
	Err  error
}

func (e *SendError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("msg: send to %q: %s", e.To, e.Kind)
	}
	return fmt.Sprintf("msg: send to %q: %s: %v", e.To, e.Kind, e.Err)
}

func (e *SendError) Unwrap() error { return e.Err }

// Retryable reports whether a later retry could plausibly succeed: the
// failure was a transient connection problem rather than a routing or
// validation error.
func (e *SendError) Retryable() bool {
	return e.Kind == ErrConnLost || e.Kind == ErrDialFailed
}
