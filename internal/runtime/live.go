package runtime

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Adjustment is one resource-manager action applied to a live process,
// surfaced to the embedding daemon (which applies it to the real OS
// process, e.g. via setpriority/mlock wrappers).
type Adjustment struct {
	PID    int
	What   string // "boost", "class", "resident"
	Value  int    // boost offset, class priority, or resident pages
	RT     bool   // for "class": real-time class granted
	Before int    // previous value of the adjusted knob
}

// LiveProc is a ProcHandle for a real OS process. The resource managers
// act on it exactly as they act on a simulated process; every change is
// recorded and reported through the host's OnAdjust hook instead of being
// applied to a simulator. CPU time and liveness may be wired to real
// observations via SetCPUTimeFunc/SetExited.
type LiveProc struct {
	pid int

	mu         sync.Mutex
	alive      bool
	boost      int
	rt         bool
	prio       int
	workingSet int
	resident   int
	cpuTimeFn  func() time.Duration
	onAdjust   func(Adjustment)
}

// PID returns the OS process identifier.
func (p *LiveProc) PID() int { return p.pid }

// Alive reports whether the process is still considered running.
func (p *LiveProc) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// SetExited marks the process dead; statistics stop being reported.
func (p *LiveProc) SetExited() {
	p.mu.Lock()
	p.alive = false
	p.mu.Unlock()
}

// SetCPUTimeFunc wires the handle to a real CPU-time observation (e.g.
// parsed from /proc/<pid>/stat by the embedding daemon).
func (p *LiveProc) SetCPUTimeFunc(fn func() time.Duration) {
	p.mu.Lock()
	p.cpuTimeFn = fn
	p.mu.Unlock()
}

// CPUTime returns the observed CPU time, or zero when unwired.
func (p *LiveProc) CPUTime() time.Duration {
	p.mu.Lock()
	fn := p.cpuTimeFn
	p.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Boost returns the management-set priority offset.
func (p *LiveProc) Boost() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.boost
}

// SetBoost records a priority-offset change and surfaces it.
func (p *LiveProc) SetBoost(b int) {
	p.mu.Lock()
	if p.boost == b || !p.alive {
		p.mu.Unlock()
		return
	}
	adj := Adjustment{PID: p.pid, What: "boost", Value: b, Before: p.boost}
	p.boost = b
	hook := p.onAdjust
	p.mu.Unlock()
	if hook != nil {
		hook(adj)
	}
}

// SetSchedClass records a scheduling-class change and surfaces it.
func (p *LiveProc) SetSchedClass(rt bool, prio int) {
	p.mu.Lock()
	if !p.alive {
		p.mu.Unlock()
		return
	}
	adj := Adjustment{PID: p.pid, What: "class", Value: prio, RT: rt, Before: p.prio}
	p.rt, p.prio = rt, prio
	hook := p.onAdjust
	p.mu.Unlock()
	if hook != nil {
		hook(adj)
	}
}

// Realtime reports whether the process has been granted the RT class.
func (p *LiveProc) Realtime() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt
}

// WorkingSet returns the declared desired resident pages.
func (p *LiveProc) WorkingSet() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workingSet
}

// SetWorkingSet declares the process's desired resident pages.
func (p *LiveProc) SetWorkingSet(pages int) {
	p.mu.Lock()
	p.workingSet = pages
	p.mu.Unlock()
}

// Resident returns the recorded resident-set allotment.
func (p *LiveProc) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// SetResident records a resident-set change and surfaces it.
func (p *LiveProc) SetResident(pages int) int {
	if pages < 0 {
		pages = 0
	}
	p.mu.Lock()
	if !p.alive || p.resident == pages {
		res := p.resident
		p.mu.Unlock()
		return res
	}
	adj := Adjustment{PID: p.pid, What: "resident", Value: pages, Before: p.resident}
	p.resident = pages
	hook := p.onAdjust
	p.mu.Unlock()
	if hook != nil {
		hook(adj)
	}
	return pages
}

// LiveHost is a HostControl for the machine a live host manager runs on.
// Load statistics come from pluggable observers (defaulting to
// /proc/loadavg where available); processes are registered as LiveProc
// handles whose adjustments flow to OnAdjust.
type LiveHost struct {
	name string

	mu        sync.Mutex
	procs     map[int]*LiveProc
	loadFn    func() float64
	runQFn    func() int
	physPages int
	freePages int
	onAdjust  func(Adjustment)
}

// NewLiveHost creates a live host named name. Load average defaults to
// the OS loadavg (zero where unavailable); memory defaults to 1<<16
// physical pages, all free.
func NewLiveHost(name string) *LiveHost {
	return &LiveHost{
		name:      name,
		procs:     make(map[int]*LiveProc),
		loadFn:    OSLoadAvg,
		physPages: 1 << 16,
		freePages: 1 << 16,
	}
}

// Name returns the host name.
func (h *LiveHost) Name() string { return h.name }

// SetOnAdjust installs the hook that receives every resource-manager
// action applied to a process of this host.
func (h *LiveHost) SetOnAdjust(fn func(Adjustment)) {
	h.mu.Lock()
	h.onAdjust = fn
	h.mu.Unlock()
}

// SetLoadFunc replaces the load-average observer (tests, custom probes).
func (h *LiveHost) SetLoadFunc(fn func() float64) {
	h.mu.Lock()
	h.loadFn = fn
	h.mu.Unlock()
}

// SetRunQueueFunc replaces the run-queue observer.
func (h *LiveHost) SetRunQueueFunc(fn func() int) {
	h.mu.Lock()
	h.runQFn = fn
	h.mu.Unlock()
}

// SetMemory declares the host's physical and free pages (as observed by
// the embedding daemon).
func (h *LiveHost) SetMemory(phys, free int) {
	h.mu.Lock()
	h.physPages, h.freePages = phys, free
	h.mu.Unlock()
}

// LoadAvg returns the observed one-minute load average.
func (h *LiveHost) LoadAvg() float64 {
	h.mu.Lock()
	fn := h.loadFn
	h.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// RunQueueLen returns the observed run-queue length (zero when unwired).
func (h *LiveHost) RunQueueLen() int {
	h.mu.Lock()
	fn := h.runQFn
	h.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// PhysPages returns the declared physical pages.
func (h *LiveHost) PhysPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.physPages
}

// FreePages returns the declared free pages.
func (h *LiveHost) FreePages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.freePages
}

// StartProc registers (or returns) the handle for pid. New handles start
// alive with zero boost and inherit the host's OnAdjust hook.
func (h *LiveHost) StartProc(pid int) *LiveProc {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.procs[pid]; ok {
		return p
	}
	p := &LiveProc{pid: pid, alive: true}
	p.onAdjust = func(a Adjustment) {
		h.mu.Lock()
		hook := h.onAdjust
		h.mu.Unlock()
		if hook != nil {
			hook(a)
		}
	}
	h.procs[pid] = p
	return p
}

// Proc returns the handle for pid, or nil.
func (h *LiveHost) Proc(pid int) *LiveProc {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.procs[pid]
}

// OSLoadAvg reads the one-minute load average from /proc/loadavg,
// returning 0 on platforms or containers where it is unavailable.
func OSLoadAvg() float64 {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0
	}
	return v
}
