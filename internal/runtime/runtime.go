// Package runtime defines the seams that separate the management stack
// (coordinators, policy agent, host and domain managers, resource
// managers) from the environment it runs in. The same stack runs in two
// runtimes:
//
//   - simulation: virtual clock (internal/sim), in-sim message bus
//     (msg.Bus) and simulated processes (internal/sched);
//   - live: wall clock, TCP JSON-lines transport (msg.NetTransport) and
//     real-process handles (LiveProc/LiveHost in this package).
//
// The managers depend only on these interfaces, so every diagnosis,
// escalation and adaptation feature is automatically available in both
// deployments — one codebase, many deployments.
package runtime

import "time"

// Clock returns the current time as a duration from an arbitrary fixed
// origin. The simulator supplies virtual time; live mode wall time.
type Clock func() time.Duration

// Wall returns a wall clock anchored at the moment of the call.
func Wall() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// ProcHandle is the process-control port: one managed process as seen by
// the resource managers. The simulator backs it with *sched.Proc; live
// mode with *LiveProc, whose adjustments are surfaced to the embedding
// daemon (which applies them to the real OS process).
type ProcHandle interface {
	// PID identifies the process on its host.
	PID() int
	// Alive reports whether the process is still running; a dead process
	// reports no statistics (how the domain manager detects failure).
	Alive() bool
	// CPUTime returns cumulative CPU time consumed.
	CPUTime() time.Duration

	// Boost returns the management-set priority offset; SetBoost changes
	// it (the paper's CPU manager lever: manipulate TS priorities).
	Boost() int
	SetBoost(b int)
	// SetSchedClass moves the process into (rt=true) or out of the
	// real-time scheduling class at class-local priority prio.
	SetSchedClass(rt bool, prio int)

	// WorkingSet returns the pages the process wants resident; Resident
	// the pages currently resident; SetResident adjusts the allotment
	// (clamped by the host) and returns the result.
	WorkingSet() int
	Resident() int
	SetResident(pages int) int
}

// HostControl is the host-statistics port the host manager diagnoses
// with and reports to the domain manager. The simulator backs it with
// *sched.Host; live mode with *LiveHost.
type HostControl interface {
	Name() string
	// LoadAvg returns the damped one-minute load average.
	LoadAvg() float64
	// RunQueueLen returns the instantaneous runnable+running count.
	RunQueueLen() int
	// PhysPages and FreePages describe physical memory.
	PhysPages() int
	FreePages() int
}
