package netsim

import (
	"testing"
	"time"

	"softqos/internal/sim"
)

// BenchmarkSwitchForwarding measures the per-packet cost of the
// simulated network's store-and-forward path: two hops with per-flow
// statistics, driven to completion through the event loop.
func BenchmarkSwitchForwarding(b *testing.B) {
	s := sim.New(1)
	n := New(s)
	delivered := 0
	n.AddNode("src", nil)
	n.AddNode("dst", func(Packet) { delivered++ })
	sw1 := n.AddSwitch("sw1", 1e9, 1<<20)
	sw2 := n.AddSwitch("sw2", 1e9, 1<<20)
	n.SetRoute("src", "dst", time.Millisecond, sw1, sw2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send("src", "dst", 1500, nil); err != nil {
			b.Fatal(err)
		}
		s.RunFor(10 * time.Millisecond)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
