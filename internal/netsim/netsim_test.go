package netsim

import (
	"testing"
	"time"

	"softqos/internal/sim"
)

// testNet builds client <- sw1 <- server with the given switch rate (B/s)
// and queue capacity, returning the network, switch, and a slice that
// collects packets delivered to "client".
func testNet(s *sim.Simulator, rate float64, qcap int) (*Network, *Switch, *[]Packet) {
	n := New(s)
	var got []Packet
	n.AddNode("client", func(p Packet) { got = append(got, p) })
	n.AddNode("server", nil)
	sw := n.AddSwitch("sw1", rate, qcap)
	n.SetRoute("server", "client", 10*time.Millisecond, sw)
	return n, sw, &got
}

func TestDeliveryWithPropagationAndService(t *testing.T) {
	s := sim.New(1)
	n, _, got := testNet(s, 1e6, 1<<20) // 1 MB/s
	if err := n.Send("server", "client", 1000, "frame"); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	// 10ms propagation + 1ms service (1000B at 1MB/s).
	if want := sim.At(11 * time.Millisecond); s.Now() != want {
		t.Errorf("delivery completed at %v, want %v", s.Now(), want)
	}
	if (*got)[0].Payload != "frame" {
		t.Errorf("payload = %v", (*got)[0].Payload)
	}
}

func TestNoRouteError(t *testing.T) {
	s := sim.New(1)
	n, _, _ := testNet(s, 1e6, 1<<20)
	if err := n.Send("client", "server", 100, nil); err == nil {
		t.Fatal("send without route succeeded")
	}
}

func TestQueueingDelayUnderBurst(t *testing.T) {
	s := sim.New(1)
	n, sw, got := testNet(s, 1e6, 1<<20)
	// 10 packets of 1000B arrive simultaneously: each takes 1ms service,
	// so the last departs 10ms after arrival.
	for i := 0; i < 10; i++ {
		_ = n.Send("server", "client", 1000, i)
	}
	s.Run()
	if len(*got) != 10 {
		t.Fatalf("delivered %d, want 10", len(*got))
	}
	if want := sim.At(20 * time.Millisecond); s.Now() != want { // 10ms prop + 10ms cumulative service
		t.Errorf("last delivery at %v, want %v", s.Now(), want)
	}
	if sw.MeanDelay() < 5*time.Millisecond {
		t.Errorf("mean switch delay %v too small for a 10-deep burst", sw.MeanDelay())
	}
}

func TestDropTailOverflow(t *testing.T) {
	s := sim.New(1)
	n, sw, got := testNet(s, 1e6, 3000) // queue holds 3 packets of 1000B
	for i := 0; i < 10; i++ {
		_ = n.Send("server", "client", 1000, i)
	}
	s.Run()
	// First packet enters service immediately (its bytes count toward the
	// backlog until served), so 3 queue, the rest drop.
	if sw.Drops == 0 {
		t.Fatal("no drops despite overflow")
	}
	if int(sw.Drops)+len(*got) != 10 {
		t.Errorf("drops %d + delivered %d != 10", sw.Drops, len(*got))
	}
	if n.Lost != sw.Drops {
		t.Errorf("network Lost %d != switch Drops %d", n.Lost, sw.Drops)
	}
}

func TestMultiHopAccumulatesDelay(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	var at sim.Time
	n.AddNode("a", nil)
	n.AddNode("b", func(Packet) { at = s.Now() })
	w1 := n.AddSwitch("w1", 1e6, 1<<20)
	w2 := n.AddSwitch("w2", 1e6, 1<<20)
	n.SetRoute("a", "b", 30*time.Millisecond, w1, w2)
	_ = n.Send("a", "b", 2000, nil)
	s.Run()
	// 30ms propagation + 2ms service at each of two switches.
	if want := sim.At(34 * time.Millisecond); at != want {
		t.Errorf("two-hop delivery at %v, want %v", at, want)
	}
}

func TestCrossTrafficCongestsSwitch(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	var deliveries []sim.Time
	n.AddNode("client", func(Packet) { deliveries = append(deliveries, s.Now()) })
	n.AddNode("server", nil)
	n.AddNode("noise", nil)
	sw := n.AddSwitch("sw", 1e6, 1<<20)
	n.SetRoute("server", "client", time.Millisecond, sw)
	n.SetRoute("noise", "client", time.Millisecond, sw)

	// Without congestion: a probe packet crosses in ~1.1ms.
	_ = n.Send("server", "client", 100, nil)
	s.RunFor(10 * time.Millisecond)
	base := deliveries[0] - 0

	// Congest: 95% utilization of the switch.
	ct := n.StartCrossTraffic("noise", "client", 9500, 10*time.Millisecond)
	s.RunFor(time.Second)
	start := s.Now()
	_ = n.Send("server", "client", 100, nil)
	s.RunFor(100 * time.Millisecond)
	ct.Stop()
	last := deliveries[len(deliveries)-1]
	congested := last - start
	if congested <= base {
		t.Errorf("congested transit %v not slower than base %v", congested.Duration(), base.Duration())
	}
	if sw.QueuedBytes(start) == 0 {
		t.Error("switch backlog empty despite 95% cross-traffic")
	}
}

func TestSwitchStatsServeAccounting(t *testing.T) {
	s := sim.New(1)
	n, sw, _ := testNet(s, 1e6, 1<<20)
	for i := 0; i < 5; i++ {
		_ = n.Send("server", "client", 200, nil)
	}
	s.Run()
	if sw.Arrivals != 5 || sw.BytesServed != 1000 {
		t.Errorf("arrivals=%d bytes=%d, want 5, 1000", sw.Arrivals, sw.BytesServed)
	}
	if n.Delivered != 5 {
		t.Errorf("Delivered = %d, want 5", n.Delivered)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	n.AddNode("x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	n.AddNode("x", nil)
}

func TestQueuedBytesDrainsOverTime(t *testing.T) {
	s := sim.New(1)
	n, sw, _ := testNet(s, 1e6, 1<<20)
	for i := 0; i < 10; i++ {
		_ = n.Send("server", "client", 1000, nil)
	}
	s.RunUntil(sim.At(10 * time.Millisecond)) // all arrived at switch, ~0 served... they arrived at t=10ms/3? prop split
	q1 := sw.QueuedBytes(s.Now())
	s.RunUntil(sim.At(14 * time.Millisecond))
	q2 := sw.QueuedBytes(s.Now())
	if q2 >= q1 && q1 > 0 {
		t.Errorf("backlog did not drain: %d then %d", q1, q2)
	}
	s.Run()
	if sw.QueuedBytes(s.Now()) != 0 {
		t.Errorf("backlog %d after drain, want 0", sw.QueuedBytes(s.Now()))
	}
}

func TestPerFlowStatistics(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	n.AddNode("client", nil)
	n.AddNode("server", nil)
	n.AddNode("noise", nil)
	sw := n.AddSwitch("sw", 1e6, 4000)
	n.SetRoute("server", "client", time.Millisecond, sw)
	n.SetRoute("noise", "client", time.Millisecond, sw)
	for i := 0; i < 5; i++ {
		_ = n.Send("server", "client", 500, nil)
	}
	for i := 0; i < 20; i++ {
		_ = n.Send("noise", "client", 1000, nil)
	}
	s.Run()
	srv, nz := sw.Flow("server"), sw.Flow("noise")
	if srv.Arrivals != 5 || nz.Arrivals != 20 {
		t.Errorf("arrivals: server=%d noise=%d", srv.Arrivals, nz.Arrivals)
	}
	if srv.Drops+nz.Drops != sw.Drops {
		t.Errorf("per-flow drops %d+%d != switch drops %d", srv.Drops, nz.Drops, sw.Drops)
	}
	if nz.Drops == 0 {
		t.Error("burst through a 4000B queue produced no noise drops")
	}
	if got := sw.Flow("ghost"); got != (FlowStats{}) {
		t.Errorf("unknown flow stats = %+v", got)
	}
	if len(sw.Flows()) != 2 {
		t.Errorf("flows = %v", sw.Flows())
	}
	if u := sw.Utilization(s.Now()); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}
