// Package netsim simulates the network between hosts: store-and-forward
// switches with finite service rates and drop-tail queues, static routes,
// and cross-traffic generators used to inject the "unexpected load on a
// network switch" faults whose localization the paper's QoS Domain Manager
// is responsible for.
package netsim

import (
	"fmt"
	"time"

	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// Packet is one unit of traffic in flight.
type Packet struct {
	Src, Dst string
	Size     int // bytes
	Payload  any
	SentAt   sim.Time
}

// Handler consumes packets delivered to a node.
type Handler func(Packet)

// node is a delivery endpoint (usually a simulated host).
type node struct {
	name    string
	handler Handler
}

// FlowStats are per-source counters at a switch, used by experiments to
// attribute congestion to traffic sources.
type FlowStats struct {
	Arrivals uint64
	Drops    uint64
	Bytes    uint64
}

// Switch is a store-and-forward element with a finite service rate and a
// drop-tail queue measured in bytes.
type Switch struct {
	name string
	rate float64 // bytes per second of service capacity
	qcap int     // queue capacity in bytes

	busyUntil sim.Time

	// Statistics (cumulative; observers take deltas).
	Arrivals    uint64
	Drops       uint64
	BytesServed uint64
	DelaySum    time.Duration // total queueing+service delay

	flows map[string]*FlowStats // keyed by packet source
}

// Name returns the switch name.
func (w *Switch) Name() string { return w.name }

// QueuedBytes returns the backlog awaiting service at virtual time now.
func (w *Switch) QueuedBytes(now sim.Time) int {
	if w.busyUntil <= now {
		return 0
	}
	return int(float64((w.busyUntil - now).Duration()) / float64(time.Second) * w.rate)
}

// Flow returns the per-source statistics for src (zero value if the
// source never traversed the switch).
func (w *Switch) Flow(src string) FlowStats {
	if fs, ok := w.flows[src]; ok {
		return *fs
	}
	return FlowStats{}
}

// Flows returns the sources that traversed the switch.
func (w *Switch) Flows() []string {
	out := make([]string, 0, len(w.flows))
	for src := range w.flows {
		out = append(out, src)
	}
	return out
}

// Utilization returns the fraction of service capacity used since the
// switch began operating, measured at virtual time now.
func (w *Switch) Utilization(now sim.Time) float64 {
	if now <= 0 || w.rate <= 0 {
		return 0
	}
	return float64(w.BytesServed) / (w.rate * now.Seconds())
}

// MeanDelay returns the average per-packet delay through the switch.
func (w *Switch) MeanDelay() time.Duration {
	served := w.Arrivals - w.Drops
	if served == 0 {
		return 0
	}
	return w.DelaySum / time.Duration(served)
}

// Route is an ordered list of switches between two endpoints plus the total
// propagation delay of its links.
type Route struct {
	Hops []*Switch
	Prop time.Duration
}

// Network owns nodes, switches and routes.
type Network struct {
	sim      *sim.Simulator
	nodes    map[string]*node
	switches map[string]*Switch
	routes   map[[2]string]*Route

	Delivered uint64
	Lost      uint64

	reg *telemetry.Registry
}

// SetMetrics attaches the network to a metrics registry: pull gauges for
// delivery/loss totals and, per switch, instantaneous queue depth plus
// cumulative arrivals/drops/served bytes ("netsim.<switch>.*"). Switches
// added later register automatically.
func (n *Network) SetMetrics(reg *telemetry.Registry) {
	n.reg = reg
	if reg == nil {
		return
	}
	reg.GaugeFunc("netsim.delivered", func() float64 { return float64(n.Delivered) })
	reg.GaugeFunc("netsim.lost", func() float64 { return float64(n.Lost) })
	for _, w := range n.switches {
		n.registerSwitchMetrics(w)
	}
}

func (n *Network) registerSwitchMetrics(w *Switch) {
	prefix := "netsim." + w.name + "."
	n.reg.GaugeFunc(prefix+"queued_bytes", func() float64 { return float64(w.QueuedBytes(n.sim.Now())) })
	n.reg.GaugeFunc(prefix+"arrivals", func() float64 { return float64(w.Arrivals) })
	n.reg.GaugeFunc(prefix+"drops", func() float64 { return float64(w.Drops) })
	n.reg.GaugeFunc(prefix+"bytes_served", func() float64 { return float64(w.BytesServed) })
}

// New creates an empty network on the simulator.
func New(s *sim.Simulator) *Network {
	return &Network{
		sim:      s,
		nodes:    make(map[string]*node),
		switches: make(map[string]*Switch),
		routes:   make(map[[2]string]*Route),
	}
}

// AddNode registers a delivery endpoint. The handler runs inside a
// simulation event when a packet arrives.
func (n *Network) AddNode(name string, h Handler) {
	if _, dup := n.nodes[name]; dup {
		panic("netsim: duplicate node " + name)
	}
	n.nodes[name] = &node{name: name, handler: h}
}

// SetHandler replaces a node's delivery handler.
func (n *Network) SetHandler(name string, h Handler) {
	nd, ok := n.nodes[name]
	if !ok {
		panic("netsim: unknown node " + name)
	}
	nd.handler = h
}

// AddSwitch creates a switch serving rate bytes/second with a queue of
// qcap bytes.
func (n *Network) AddSwitch(name string, rate float64, qcap int) *Switch {
	if _, dup := n.switches[name]; dup {
		panic("netsim: duplicate switch " + name)
	}
	w := &Switch{name: name, rate: rate, qcap: qcap, flows: make(map[string]*FlowStats)}
	n.switches[name] = w
	if n.reg != nil {
		n.registerSwitchMetrics(w)
	}
	return w
}

// Switch returns a switch by name, or nil.
func (n *Network) Switch(name string) *Switch { return n.switches[name] }

// Switches returns all switches.
func (n *Network) Switches() []*Switch {
	out := make([]*Switch, 0, len(n.switches))
	for _, w := range n.switches {
		out = append(out, w)
	}
	return out
}

// SetRoute installs the path used by packets from src to dst. Routes are
// unidirectional; install both directions for duplex traffic.
func (n *Network) SetRoute(src, dst string, prop time.Duration, hops ...*Switch) {
	if _, ok := n.nodes[src]; !ok {
		panic("netsim: route from unknown node " + src)
	}
	if _, ok := n.nodes[dst]; !ok {
		panic("netsim: route to unknown node " + dst)
	}
	n.routes[[2]string{src, dst}] = &Route{Hops: hops, Prop: prop}
}

// RouteBetween returns the installed route, or nil.
func (n *Network) RouteBetween(src, dst string) *Route {
	return n.routes[[2]string{src, dst}]
}

// Send injects a packet from src to dst. It returns an error if no route
// exists; queue overflow along the path silently drops the packet (like a
// real datagram network) and is visible in switch statistics.
func (n *Network) Send(src, dst string, size int, payload any) error {
	r := n.routes[[2]string{src, dst}]
	if r == nil {
		return fmt.Errorf("netsim: no route %s -> %s", src, dst)
	}
	pkt := Packet{Src: src, Dst: dst, Size: size, Payload: payload, SentAt: n.sim.Now()}
	// Propagation is split evenly across the hops plus final delivery leg.
	legs := len(r.Hops) + 1
	legDelay := r.Prop / time.Duration(legs)
	n.sim.After(legDelay, func() { n.arriveAtHop(pkt, r, 0, legDelay) })
	return nil
}

// arriveAtHop handles the packet's arrival at r.Hops[i] (or final delivery
// when i == len(r.Hops)).
func (n *Network) arriveAtHop(pkt Packet, r *Route, i int, legDelay time.Duration) {
	if i == len(r.Hops) {
		n.Delivered++
		if nd := n.nodes[pkt.Dst]; nd != nil && nd.handler != nil {
			nd.handler(pkt)
		}
		return
	}
	w := r.Hops[i]
	now := n.sim.Now()
	w.Arrivals++
	fs, ok := w.flows[pkt.Src]
	if !ok {
		fs = &FlowStats{}
		w.flows[pkt.Src] = fs
	}
	fs.Arrivals++
	if w.QueuedBytes(now)+pkt.Size > w.qcap {
		w.Drops++
		fs.Drops++
		n.Lost++
		return
	}
	fs.Bytes += uint64(pkt.Size)
	service := time.Duration(float64(pkt.Size) / w.rate * float64(time.Second))
	start := w.busyUntil
	if start < now {
		start = now
	}
	departure := start + sim.Time(service)
	w.busyUntil = departure
	w.BytesServed += uint64(pkt.Size)
	w.DelaySum += (departure - now).Duration()
	n.sim.Schedule(departure+sim.Time(legDelay), func() {
		n.arriveAtHop(pkt, r, i+1, legDelay)
	})
}

// CrossTraffic is a constant-bit-rate background load through a route,
// used to congest switches for fault-injection experiments.
type CrossTraffic struct {
	net      *Network
	src, dst string
	size     int
	interval time.Duration
	ticker   *sim.Ticker
}

// StartCrossTraffic sends a packet of size bytes from src to dst every
// interval until stopped. src and dst must be registered nodes with a
// route between them.
func (n *Network) StartCrossTraffic(src, dst string, size int, interval time.Duration) *CrossTraffic {
	if n.routes[[2]string{src, dst}] == nil {
		panic(fmt.Sprintf("netsim: cross traffic with no route %s -> %s", src, dst))
	}
	ct := &CrossTraffic{net: n, src: src, dst: dst, size: size, interval: interval}
	ct.ticker = n.sim.Every(interval, func() {
		// Route presence was checked at start; Send cannot fail here.
		_ = n.Send(src, dst, size, nil)
	})
	return ct
}

// Stop halts the background flow.
func (ct *CrossTraffic) Stop() { ct.ticker.Stop() }
