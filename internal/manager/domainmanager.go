package manager

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"softqos/internal/msg"
	"softqos/internal/rules"
	"softqos/internal/telemetry"
	"softqos/internal/telemetry/eventlog"
)

// DefaultDomainRules is the QoS Domain Manager rule set of Section 5.3,
// extended with the paper's process-failure adaptation ("restarting a
// failed process"): a server-side report that omits the server process's
// CPU statistic means the process has died, and the domain manager
// directs its host manager to restart it.
//
// upon an alarm from a client-side host manager, the server-side host
// manager is queried for CPU load (both the damped load average and the
// instantaneous run-queue length, whose maximum avoids the load average's
// start-up lag) and memory usage; a high server CPU load (or memory
// pressure) indicts the server machine, otherwise the fault is attributed
// to the network.
const DefaultDomainRules = `
(deffacts domain-thresholds
  (cpu-load-threshold 2.0)
  (mem-threshold 0.9))

(defrule server-process-dead
  (declare (salience 20))
  (episode ?e ?app)
  (server-exe ?e ?exe)
  (not (server-proc-alive ?e))
  =>
  (call restart-server ?e))

(defrule server-cpu-starved
  (declare (salience 10))
  (episode ?e ?app)
  (server-proc-alive ?e)
  (server-report ?e cpu_load ?l)
  (server-report ?e run_queue ?q)
  (cpu-load-threshold ?t)
  (test (>= (max ?l ?q) ?t))
  =>
  (call boost-server ?e 10))

(defrule server-memory-starved
  (episode ?e ?app)
  (server-proc-alive ?e)
  (server-report ?e cpu_load ?l)
  (server-report ?e run_queue ?q)
  (cpu-load-threshold ?t)
  (test (< (max ?l ?q) ?t))
  (server-report ?e mem_usage ?m)
  (mem-threshold ?mt)
  (test (>= ?m ?mt))
  =>
  (call grow-server-memory ?e 1024))

(defrule network-fault
  (episode ?e ?app)
  (server-proc-alive ?e)
  (server-report ?e cpu_load ?l)
  (server-report ?e run_queue ?q)
  (cpu-load-threshold ?t)
  (test (< (max ?l ?q) ?t))
  (server-report ?e mem_usage ?m)
  (mem-threshold ?mt)
  (test (< ?m ?mt))
  =>
  (call network-fault ?e))
`

// serverRef locates the server side of a managed application.
type serverRef struct {
	hostMgrAddr string
	executable  string
}

// episode is one in-flight localization: an alarm awaiting the
// server-side report.
type episode struct {
	alarm  msg.Alarm
	server serverRef
	// ctx is the trace context localization spans chain under: initially
	// the context the alarm carried (the client host manager's escalate
	// span), advancing as local spans are recorded. alarmCtx keeps the
	// original inbound context for propagation gating.
	ctx      telemetry.TraceContext
	alarmCtx telemetry.TraceContext
	// Liveness bookkeeping (EnableLiveness): when the episode was opened
	// or last retried, and whether its query has been retried already.
	at      time.Duration
	retried bool
}

// fanout is one in-flight downward query: a parent tier asked this
// domain for aggregate statistics, and the domain fanned the question
// out to its registered hosts. pending tracks exactly which hosts have
// not reported yet, so a retry re-queries only the non-responders.
type fanout struct {
	requester string   // address the aggregate Report goes back to
	ref       string   // requester's correlation tag, echoed on the reply
	keys      []string // statistics asked for
	asked     int
	pending   map[string]string  // host name -> host manager address, not yet reported
	values    map[string]float64 // aggregation: "<key>_max" across reporters
	hotHost   string             // host manager address with the max cpu_load so far
	hotLoad   float64
	reports   int
	ctx       telemetry.TraceContext
	at        time.Duration
	retried   bool
}

// DomainManager locates sources of problems spanning hosts and issues
// corrective directives to host managers.
type DomainManager struct {
	addr string
	send Send

	engine   *rules.Engine
	servers  map[string]serverRef // application -> server side
	episodes map[string]*episode  // ref -> pending episode
	nextRef  int

	// Hierarchy state, empty in flat (2-tier) topologies. Hosts register
	// with the domain exactly as coordinators register with the policy
	// agent; the same heartbeat/liveness machinery then governs them.
	hosts     map[string]string // host name -> host manager address
	hostSeen  map[string]time.Duration
	hostOrder []string // registration order, for deterministic sweeps
	// hostTimeout governs host-roster eviction (SetHostTimeout); zero
	// falls back to livenessTimeout.
	hostTimeout time.Duration
	fanouts     map[string]*fanout // ref -> pending downward fan-out
	tier        int                // trace tier depth (0 = flat, 2 = domain under a region)
	lastHot     string             // most recently implicated host manager address

	// uplink, when set, batches this domain's alarm traffic toward the
	// parent tier instead of (or in addition to) diagnosing locally.
	uplink *AlarmCoalescer
	// summarySink, when set, receives inbound host telemetry summaries
	// (SetSummarySink wires a SummaryAggregator's Ingest here).
	summarySink func(msg.TelemetrySummary)
	// policyAgents, when set, receives relayed policy deltas
	// (SetPolicyAgents names the per-domain policy agents the live
	// distribution path terminates at).
	policyAgents []string
	// SeverityFor, when set, grades an alarm for uplink escalation
	// (default severity 1).
	SeverityFor func(msg.Alarm) int

	// OnNetworkFault, if set, is invoked when an episode is diagnosed as
	// a network problem (scenarios hook rerouting here: "rerouting
	// traffic around a congested network switch").
	OnNetworkFault func(al msg.Alarm)

	// OnHostEvicted, if set, is invoked with each host name the liveness
	// sweep evicts from the roster. Live policy distribution wires the
	// rollout controller's HostEvicted here so a canary whose cohort
	// host dies mid-bake is rolled back rather than judged on silence.
	OnHostEvicted func(host string)

	// Statistics.
	Alarms           uint64
	ServerFaults     uint64
	MemoryFaults     uint64
	NetworkFaults    uint64
	Restarts         uint64
	RuleErrors       uint64
	QueryRetries     uint64
	EpisodeTimeouts  uint64
	Fanouts          uint64 // downward fan-out queries answered
	FanoutQueries    uint64 // per-host sub-queries those fanned out to
	HostsEvicted     uint64
	DirectivesRouted uint64 // parent directives routed down to a host
	// PolicyDeltasRelayed counts policy deltas forwarded to policy
	// agents (fan-out included).
	PolicyDeltasRelayed uint64

	// Liveness tracking (EnableLiveness): episodes whose server report
	// never arrives are retried once, then abandoned with a traced
	// reason instead of pending forever.
	livenessClock   telemetry.Clock
	livenessTimeout time.Duration

	// Telemetry (optional; see SetTelemetry).
	metrics *dmMetrics
	tracer  *telemetry.Tracer
	epCur   *episode // episode being diagnosed (explanation attribution)
	// evlog, when set, records the decisions this manager otherwise makes
	// silently (evictions, retries, timeouts) as structured events. Nil —
	// the default — is free (eventlog methods are nil-safe).
	evlog *eventlog.Logger
}

// dmMetrics holds the domain manager's pre-resolved metric handles.
type dmMetrics struct {
	alarms        *telemetry.Counter
	serverFaults  *telemetry.Counter
	memoryFaults  *telemetry.Counter
	networkFaults *telemetry.Counter
	restarts      *telemetry.Counter
	ruleErrors    *telemetry.Counter
	firings       *telemetry.Histogram
	inferNS       *telemetry.Histogram
	wall          telemetry.Clock

	// Lazy counters (fault-injection and hierarchical runs only; see
	// hmMetrics).
	reg          *telemetry.Registry
	queryRetries *telemetry.Counter
	timeouts     *telemetry.Counter
	fanouts      *telemetry.Counter
	fanoutSubs   *telemetry.Counter
	hostsEvicted *telemetry.Counter
	policyRelays *telemetry.Counter
}

func (m *dmMetrics) countQueryRetry() {
	if m.queryRetries == nil {
		m.queryRetries = m.reg.Counter("domain.query_retries")
	}
	m.queryRetries.Inc()
}

func (m *dmMetrics) countTimeout() {
	if m.timeouts == nil {
		m.timeouts = m.reg.Counter("domain.episode_timeouts")
	}
	m.timeouts.Inc()
}

func (m *dmMetrics) countFanout(subQueries int) {
	if m.fanouts == nil {
		m.fanouts = m.reg.Counter("domain.fanouts")
		m.fanoutSubs = m.reg.Counter("domain.fanout_queries")
	}
	m.fanouts.Inc()
	m.fanoutSubs.Add(uint64(subQueries))
}

func (m *dmMetrics) countHostEvicted() {
	if m.hostsEvicted == nil {
		m.hostsEvicted = m.reg.Counter("domain.hosts_evicted")
	}
	m.hostsEvicted.Inc()
}

func (m *dmMetrics) countPolicyRelay(fanout int) {
	if m.policyRelays == nil {
		m.policyRelays = m.reg.Counter("domain.policy_deltas_relayed")
	}
	m.policyRelays.Add(uint64(fanout))
}

// NewDomainManager creates a domain manager bound to addr, loading the
// default rule set.
func NewDomainManager(addr string, send Send) *DomainManager {
	dm := &DomainManager{
		addr:     addr,
		send:     send,
		engine:   rules.NewEngine(),
		servers:  make(map[string]serverRef),
		episodes: make(map[string]*episode),
	}
	dm.registerCallbacks()
	if err := dm.engine.LoadRulesOrigin("domain-default", DefaultDomainRules); err != nil {
		panic("manager: default domain rules do not parse: " + err.Error())
	}
	return dm
}

// Addr returns the manager's management address.
func (dm *DomainManager) Addr() string { return dm.addr }

// SetTelemetry attaches the domain manager to a metrics registry and
// (optionally) a violation tracer. Localization outcomes and directives
// are attributed to the originating client violation's trace through the
// alarm identity carried by each episode.
func (dm *DomainManager) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	dm.tracer = tracer
	if tracer != nil {
		dm.engine.OnFiring = dm.explainFiring
	} else {
		dm.engine.OnFiring = nil
	}
	if reg == nil {
		dm.metrics = nil
		return
	}
	dm.metrics = &dmMetrics{
		reg:           reg,
		alarms:        reg.Counter("domain.alarms"),
		serverFaults:  reg.Counter("domain.server_faults"),
		memoryFaults:  reg.Counter("domain.memory_faults"),
		networkFaults: reg.Counter("domain.network_faults"),
		restarts:      reg.Counter("domain.restarts"),
		ruleErrors:    reg.Counter("domain.rule_errors"),
		firings:       reg.Histogram("domain.rule_firings", 0),
		inferNS:       reg.Histogram("domain.inference_ns", 0),
		wall:          reg.WallClock(),
	}
}

// SetEventLog attaches the structured event log this manager records
// its silent decisions on (component "domainmanager"). Nil detaches.
func (dm *DomainManager) SetEventLog(lg *eventlog.Logger) { dm.evlog = lg }

// traceEvent records a span on the trace of the client violation that
// opened the episode, chained under the episode's current context, which
// advances to the new span (locate then directive nest causally). It
// returns the span's context for propagation on outgoing directives.
func (dm *DomainManager) traceEvent(ep *episode, stage, detail string) telemetry.TraceContext {
	if dm.tracer == nil {
		return telemetry.TraceContext{}
	}
	ctx := dm.tracer.EventCtxTier(ep.ctx, ep.alarm.ID.Address(), ep.alarm.Policy,
		"domainmanager", stage, detail, dm.tier)
	if ctx.Valid() {
		ep.ctx = ctx
	}
	return ctx
}

// explainFiring attaches each localization rule firing to the client
// violation's trace as an explanation record.
func (dm *DomainManager) explainFiring(f rules.Firing) {
	if dm.tracer == nil || dm.epCur == nil {
		return
	}
	ep := dm.epCur
	dm.tracer.Explain(ep.ctx, ep.alarm.ID.Address(), ep.alarm.Policy, telemetry.Explanation{
		Engine:    dm.addr,
		Rule:      f.Rule,
		RuleSet:   f.Origin,
		Salience:  f.Salience,
		Bindings:  f.Bindings,
		Matched:   f.Matched,
		Asserted:  f.Asserted,
		Retracted: f.Retracted,
		Called:    f.Called,
	})
}

// Engine exposes the inference engine.
func (dm *DomainManager) Engine() *rules.Engine { return dm.engine }

// LoadRules replaces the rule set at run time.
func (dm *DomainManager) LoadRules(src string) error { return dm.engine.LoadRules(src) }

// LoadNamedRules replaces the rule set at run time with provenance (see
// HostManager.LoadNamedRules).
func (dm *DomainManager) LoadNamedRules(name, src string) error {
	return dm.engine.LoadRulesOrigin(name, src)
}

// RegisterAppServer tells the domain manager which host manager and
// executable serve an application (its configuration knowledge).
func (dm *DomainManager) RegisterAppServer(application, hostMgrAddr, executable string) {
	dm.servers[application] = serverRef{hostMgrAddr: hostMgrAddr, executable: executable}
}

func (dm *DomainManager) registerCallbacks() {
	dm.engine.RegisterFunc("boost-server", func(args []rules.Value) error {
		ep, err := dm.episodeArg(args, 0)
		if err != nil {
			return err
		}
		amount := 10.0
		if len(args) >= 2 && args[1].Kind == rules.NumberKind {
			amount = args[1].Num
		}
		dm.ServerFaults++
		if dm.metrics != nil {
			dm.metrics.serverFaults.Inc()
		}
		dm.traceEvent(ep, telemetry.StageLocate, "server CPU starved")
		ctx := dm.traceEvent(ep, telemetry.StageDirective,
			fmt.Sprintf("boost_cpu %s %+g -> %s", ep.server.executable, amount, ep.server.hostMgrAddr))
		return dm.send(ep.server.hostMgrAddr, msg.Message{
			From:  dm.addr,
			Trace: dm.propagated(ep, ctx),
			Body: msg.Directive{From: dm.addr, Action: "boost_cpu",
				Target: ep.server.executable, Amount: amount},
		})
	})
	dm.engine.RegisterFunc("grow-server-memory", func(args []rules.Value) error {
		ep, err := dm.episodeArg(args, 0)
		if err != nil {
			return err
		}
		pages := 1024.0
		if len(args) >= 2 && args[1].Kind == rules.NumberKind {
			pages = args[1].Num
		}
		dm.MemoryFaults++
		if dm.metrics != nil {
			dm.metrics.memoryFaults.Inc()
		}
		dm.traceEvent(ep, telemetry.StageLocate, "server memory pressure")
		ctx := dm.traceEvent(ep, telemetry.StageDirective,
			fmt.Sprintf("adjust_memory %s %+g pages -> %s", ep.server.executable, pages, ep.server.hostMgrAddr))
		return dm.send(ep.server.hostMgrAddr, msg.Message{
			From:  dm.addr,
			Trace: dm.propagated(ep, ctx),
			Body: msg.Directive{From: dm.addr, Action: "adjust_memory",
				Target: ep.server.executable, Amount: pages},
		})
	})
	dm.engine.RegisterFunc("restart-server", func(args []rules.Value) error {
		ep, err := dm.episodeArg(args, 0)
		if err != nil {
			return err
		}
		dm.Restarts++
		if dm.metrics != nil {
			dm.metrics.restarts.Inc()
		}
		dm.traceEvent(ep, telemetry.StageLocate, "server process dead")
		ctx := dm.traceEvent(ep, telemetry.StageDirective,
			fmt.Sprintf("restart_proc %s -> %s", ep.server.executable, ep.server.hostMgrAddr))
		return dm.send(ep.server.hostMgrAddr, msg.Message{
			From:  dm.addr,
			Trace: dm.propagated(ep, ctx),
			Body: msg.Directive{From: dm.addr, Action: "restart_proc",
				Target: ep.server.executable},
		})
	})
	dm.engine.RegisterFunc("network-fault", func(args []rules.Value) error {
		ep, err := dm.episodeArg(args, 0)
		if err != nil {
			return err
		}
		dm.NetworkFaults++
		if dm.metrics != nil {
			dm.metrics.networkFaults.Inc()
		}
		dm.traceEvent(ep, telemetry.StageLocate, "network congestion")
		if dm.OnNetworkFault != nil {
			dm.traceEvent(ep, telemetry.StageDirective, "reroute around congested switch")
			dm.OnNetworkFault(ep.alarm)
		}
		return nil
	})
}

// propagated returns the context to stamp on an outgoing message: ctx
// when the episode's alarm itself carried one (so propagation stays off
// end-to-end when the origin disabled it), the zero context otherwise.
func (dm *DomainManager) propagated(ep *episode, ctx telemetry.TraceContext) telemetry.TraceContext {
	if ep.alarmCtx.Valid() {
		return ctx
	}
	return telemetry.TraceContext{}
}

func (dm *DomainManager) episodeArg(args []rules.Value, i int) (*episode, error) {
	if len(args) <= i || args[i].Kind != rules.SymbolKind {
		return nil, fmt.Errorf("argument %d: expected episode symbol", i)
	}
	ep, ok := dm.episodes[args[i].Sym]
	if !ok {
		return nil, fmt.Errorf("unknown episode %s", args[i].Sym)
	}
	return ep, nil
}

// HandleMessage processes one inbound management message.
func (dm *DomainManager) HandleMessage(m msg.Message) {
	switch body := m.Body.(type) {
	case *msg.Alarm:
		dm.handleAlarm(*body, m.Trace)
	case msg.Alarm:
		dm.handleAlarm(body, m.Trace)
	case *msg.Report:
		dm.handleReport(*body)
	case msg.Report:
		dm.handleReport(body)
	case *msg.Register:
		dm.handleHostRegister(*body, m.From)
	case msg.Register:
		dm.handleHostRegister(body, m.From)
	case *msg.Heartbeat:
		dm.handleHostHeartbeat(*body, m.From)
	case msg.Heartbeat:
		dm.handleHostHeartbeat(body, m.From)
	case *msg.Query:
		dm.handleTierQuery(*body, m.Trace)
	case msg.Query:
		dm.handleTierQuery(body, m.Trace)
	case *msg.Directive:
		dm.handleTierDirective(*body, m.Trace)
	case msg.Directive:
		dm.handleTierDirective(body, m.Trace)
	case *msg.TelemetrySummary:
		dm.handleSummary(*body)
	case msg.TelemetrySummary:
		dm.handleSummary(body)
	case *msg.PolicyDelta:
		dm.relayDelta(m)
	case msg.PolicyDelta:
		dm.relayDelta(m)
	case *msg.Ack, msg.Ack:
		// Directive acknowledgements are informational.
	}
}

// SetPolicyAgents names the policy agents this domain relays repository
// policy deltas to — the terminal hop of the hub → region → domain →
// agent distribution path. A domain with none configured drops deltas
// (it is not part of a live-distribution deployment).
func (dm *DomainManager) SetPolicyAgents(addrs ...string) {
	dm.policyAgents = append([]string(nil), addrs...)
}

// relayDelta forwards a policy delta to this domain's policy agents,
// trace context intact.
func (dm *DomainManager) relayDelta(m msg.Message) {
	for _, addr := range dm.policyAgents {
		_ = dm.send(addr, msg.Message{From: dm.addr, Trace: m.Trace, Body: m.Body})
	}
	dm.PolicyDeltasRelayed += uint64(len(dm.policyAgents))
	if dm.metrics != nil && len(dm.policyAgents) > 0 {
		dm.metrics.countPolicyRelay(len(dm.policyAgents))
	}
	if len(dm.policyAgents) > 0 {
		dm.evlog.EventCtx(m.Trace, eventlog.Debug, "domainmanager", "policy_relay",
			eventlog.Int("agents", len(dm.policyAgents)))
	}
}

// SetSummarySink routes inbound host telemetry summaries to fn —
// typically a SummaryAggregator's Ingest, which merges them and ships
// one domain-tier summary per window up to the region. Summaries
// arriving with no sink set are dropped (a non-federated domain has
// nothing to do with them).
func (dm *DomainManager) SetSummarySink(fn func(msg.TelemetrySummary)) {
	dm.summarySink = fn
}

func (dm *DomainManager) handleSummary(ts msg.TelemetrySummary) {
	if dm.summarySink != nil {
		dm.summarySink(ts)
	}
}

// handleAlarm opens an episode and interrogates the server-side host
// manager ("Upon receiving an alarm report from the client-side QoS Host
// Manager, ask the corresponding server-side QoS Host Manager for CPU
// load and memory usage").
func (dm *DomainManager) handleAlarm(al msg.Alarm, tc telemetry.TraceContext) {
	dm.Alarms++
	if dm.metrics != nil {
		dm.metrics.alarms.Inc()
	}
	// Hierarchical uplink: the domain's alarm activity coalesces upward
	// regardless of whether local diagnosis succeeds, so the region tier
	// sees aggregate pressure instead of per-host floods.
	if dm.uplink != nil {
		sev := 1
		if dm.SeverityFor != nil {
			sev = dm.SeverityFor(al)
		}
		_ = dm.uplink.AddCtx(al, sev, tc)
	}
	server, ok := dm.servers[al.ID.Application]
	if !ok {
		dm.RuleErrors++
		if dm.metrics != nil {
			dm.metrics.ruleErrors.Inc()
		}
		dm.evlog.EventCtx(tc, eventlog.Warn, "domainmanager", "unknown_application",
			eventlog.Str("application", al.ID.Application),
			eventlog.Str("subject", al.ID.Address()))
		return
	}
	dm.nextRef++
	ref := "e" + strconv.Itoa(dm.nextRef)
	ep := &episode{alarm: al, server: server, ctx: tc, alarmCtx: tc}
	if dm.livenessClock != nil {
		ep.at = dm.livenessClock()
	}
	dm.episodes[ref] = ep
	_ = dm.send(server.hostMgrAddr, msg.Message{
		From:  dm.addr,
		Trace: tc,
		Body:  dm.episodeQuery(ep, ref),
	})
}

// episodeQuery builds the server-side statistics query for an episode.
func (dm *DomainManager) episodeQuery(ep *episode, ref string) msg.Query {
	return msg.Query{
		From: dm.addr,
		Keys: []string{"cpu_load", "run_queue", "mem_usage", "proc_cpu:" + ep.server.executable},
		Ref:  ref,
	}
}

// EnableLiveness arms episode timeouts: a localization whose server
// report does not arrive within timeout re-sends its query once, and is
// abandoned (with the reason traced) if the retry also times out.
// Disabled by default so fault-free simulations are unchanged.
func (dm *DomainManager) EnableLiveness(clock telemetry.Clock, timeout time.Duration) {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	dm.livenessClock = clock
	dm.livenessTimeout = timeout
}

// CheckLiveness sweeps pending episodes: expired ones are retried once
// (the query may have been lost in flight), twice-expired ones are
// closed with an "abandoned" span on the client violation's trace so no
// episode pends forever on a dead host manager. Episode refs are swept
// in sorted order for deterministic simulated runs.
func (dm *DomainManager) CheckLiveness() (retried, abandoned int) {
	if dm.livenessClock == nil || dm.livenessTimeout <= 0 {
		return 0, 0
	}
	now := dm.livenessClock()
	// Hierarchy sweeps (no-ops in flat topologies): pending fan-outs are
	// retried with the scope narrowed to the hosts that have not
	// reported, and silent hosts are evicted.
	fr, fa := dm.checkFanouts(now)
	retried += fr
	abandoned += fa
	dm.checkHosts(now)
	refs := make([]string, 0, len(dm.episodes))
	for ref, ep := range dm.episodes {
		if now-ep.at > dm.livenessTimeout {
			refs = append(refs, ref)
		}
	}
	sort.Strings(refs)
	for _, ref := range refs {
		ep := dm.episodes[ref]
		if !ep.retried {
			ep.retried = true
			ep.at = now
			dm.QueryRetries++
			if dm.metrics != nil {
				dm.metrics.countQueryRetry()
			}
			dm.traceEvent(ep, telemetry.StageEscalate,
				"re-query "+ep.server.hostMgrAddr+" (report timed out)")
			dm.evlog.EventCtx(ep.ctx, eventlog.Info, "domainmanager", "episode_retry",
				eventlog.Str("ref", ref), eventlog.Str("server", ep.server.hostMgrAddr))
			_ = dm.send(ep.server.hostMgrAddr, msg.Message{
				From:  dm.addr,
				Trace: dm.propagated(ep, ep.ctx),
				Body:  dm.episodeQuery(ep, ref),
			})
			retried++
			continue
		}
		dm.EpisodeTimeouts++
		if dm.metrics != nil {
			dm.metrics.countTimeout()
		}
		dm.traceEvent(ep, telemetry.StageAbandoned,
			"localization abandoned: no report from "+ep.server.hostMgrAddr+" after retry")
		dm.evlog.EventCtx(ep.ctx, eventlog.Warn, "domainmanager", "episode_timeout",
			eventlog.Str("ref", ref), eventlog.Str("server", ep.server.hostMgrAddr))
		delete(dm.episodes, ref)
		abandoned++
	}
	return retried, abandoned
}

// PendingEpisodes returns how many localizations await a server report.
func (dm *DomainManager) PendingEpisodes() int { return len(dm.episodes) }

// handleReport closes the episode: asserts the server statistics as
// facts, forward-chains the diagnosis, and cleans up.
func (dm *DomainManager) handleReport(r msg.Report) {
	if f, ok := dm.fanouts[r.Ref]; ok {
		dm.handleFanoutReport(r.Ref, f, r)
		return
	}
	ep, ok := dm.episodes[r.Ref]
	if !ok {
		return
	}
	dm.hostContact(r.Host)
	dm.engine.AssertF("episode", r.Ref, orUnknown(ep.alarm.ID.Application))
	dm.engine.AssertF("server-exe", r.Ref, ep.server.executable)
	procAlive := false
	for k, v := range r.Values {
		dm.engine.AssertF("server-report", r.Ref, k, v)
		if k == "proc_cpu:"+ep.server.executable {
			procAlive = true
		}
	}
	if procAlive {
		dm.engine.AssertF("server-proc-alive", r.Ref)
	}
	var inferStart time.Duration
	if dm.metrics != nil && dm.metrics.wall != nil {
		inferStart = dm.metrics.wall()
	}
	dm.epCur = ep
	fired, err := dm.engine.Run(100)
	dm.epCur = nil
	if dm.metrics != nil {
		if dm.metrics.wall != nil {
			dm.metrics.inferNS.ObserveDuration(dm.metrics.wall() - inferStart)
		}
		dm.metrics.firings.Observe(float64(fired))
	}
	if err != nil {
		dm.RuleErrors++
		if dm.metrics != nil {
			dm.metrics.ruleErrors.Inc()
		}
	}
	dm.engine.RetractMatching(rules.F("episode", r.Ref, "?")...)
	dm.engine.RetractMatching(rules.F("server-exe", r.Ref, "?")...)
	dm.engine.RetractMatching(rules.F("server-proc-alive", r.Ref)...)
	dm.engine.RetractMatching(rules.F("server-report", r.Ref, "?", "?")...)
	delete(dm.episodes, r.Ref)
}
