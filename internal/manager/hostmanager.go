package manager

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"softqos/internal/msg"
	"softqos/internal/rules"
	"softqos/internal/runtime"
	"softqos/internal/telemetry"
	"softqos/internal/telemetry/eventlog"
)

// Send transmits a management message (bus or TCP transport).
type Send = msg.SendFunc

// DefaultHostRules is the QoS Host Manager rule set described in Section
// 5.3 of the paper, written in the CLIPS-like DSL:
//
//   - a violation whose communication buffer is long means the process
//     cannot drain frames fast enough → local CPU starvation → raise the
//     process's CPU priority, by an amount that grows with how far the
//     metric is from its target ("Additional rules are used to determine
//     how much to increase CPU priority based on how close the policy is
//     to being satisfied");
//   - a violation whose buffer is short means frames are not arriving →
//     the fault is not local → escalate to the QoS Domain Manager;
//   - an overshoot report (metric above expectations) → reclaim resources
//     gently (the strategy of Section 2: reduce the allocation when the
//     expectation is exceeded);
//   - a violation with no buffer reading at all → apply a modest default
//     boost (no evidence for a remote cause).
const DefaultHostRules = `
(deffacts host-thresholds
  (buffer-threshold 8))

(defrule local-cpu-starvation
  (declare (salience 10))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (>= ?len ?t))
  (reading ?p frame_rate ?fps)
  =>
  (call boost-cpu ?p (max 2 (min 15 (- 25 ?fps)))))

(defrule escalate-remote
  (declare (salience 10))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (< ?len ?t))
  =>
  (call notify-domain ?p ?policy))

(defrule reclaim-on-overshoot
  (overshoot ?p ?policy)
  =>
  (call reclaim-cpu ?p 1))

(defrule local-default-boost
  (violation ?p ?policy)
  (not (reading ?p buffer_size ?len))
  =>
  (call boost-cpu ?p 5))
`

// OverloadHostRules extends the default rule set with the paper's
// future-work overload handling (§10 iii): when a violation persists even
// though the CPU manager has already pushed the process's priority to a
// high level — there simply are not enough cycles — the manager asks the
// application itself to adapt, degrading the stream through the
// frame_skip actuator instead of thrashing priorities.
const OverloadHostRules = `
(deffacts host-thresholds
  (buffer-threshold 8)
  (boost-saturation 40))

(defrule adapt-on-overload
  (declare (salience 20))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (>= ?len ?t))
  (proc-boost ?p ?b)
  (boost-saturation ?sat)
  (test (>= ?b ?sat))
  =>
  (call request-adaptation ?p frame_skip 3))

(defrule local-cpu-starvation
  (declare (salience 10))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (>= ?len ?t))
  (proc-boost ?p ?b)
  (boost-saturation ?sat)
  (test (< ?b ?sat))
  (reading ?p frame_rate ?fps)
  =>
  (call boost-cpu ?p (max 2 (min 15 (- 25 ?fps)))))

(defrule escalate-remote
  (declare (salience 10))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (< ?len ?t))
  =>
  (call notify-domain ?p ?policy))

(defrule reclaim-on-overshoot
  (overshoot ?p ?policy)
  =>
  (call reclaim-cpu ?p 1))
`

// MemoryAwareHostRules extends diagnosis with the memory resource: a
// process starved while the host's CPU is idle (low load average, full
// buffer) is suffering memory pressure, not CPU contention — the memory
// manager restores its resident set. CPU contention keeps the usual
// priority treatment.
const MemoryAwareHostRules = `
(deffacts host-thresholds
  (buffer-threshold 8)
  (idle-load 1.5))

(defrule memory-starvation
  (declare (salience 20))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (>= ?len ?t))
  (host-load ?l)
  (idle-load ?il)
  (test (< ?l ?il))
  =>
  (call restore-memory ?p))

(defrule local-cpu-starvation
  (declare (salience 10))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (>= ?len ?t))
  (host-load ?l)
  (idle-load ?il)
  (test (>= ?l ?il))
  (reading ?p frame_rate ?fps)
  =>
  (call boost-cpu ?p (max 2 (min 15 (- 25 ?fps)))))

(defrule escalate-remote
  (declare (salience 10))
  (violation ?p ?policy)
  (reading ?p buffer_size ?len)
  (buffer-threshold ?t)
  (test (< ?len ?t))
  =>
  (call notify-domain ?p ?policy))

(defrule reclaim-on-overshoot
  (overshoot ?p ?policy)
  =>
  (call reclaim-cpu ?p 1))
`

// DifferentiatedHostRules is an administrative rule set realising the
// constraint of Sections 2 and 3.1: when demand exceeds capacity, some
// applications have priority over others. Violations from processes in
// the "physician" role are corrected with the full proportional boost;
// "student" processes receive only small, capped boosts, so under
// contention the physician's stream keeps its expectation while the
// student's degrades.
const DifferentiatedHostRules = `
(deffacts host-thresholds
  (buffer-threshold 8))

(defrule priority-role-starved
  (declare (salience 20))
  (violation ?p ?policy)
  (proc-role ?p physician)
  (reading ?p frame_rate ?fps)
  =>
  (call boost-cpu ?p (max 2 (min 15 (- 25 ?fps)))))

(defrule best-effort-role-starved
  (declare (salience 10))
  (violation ?p ?policy)
  (proc-role ?p student)
  =>
  (call boost-cpu ?p 2)
  (call cap-boost ?p 5))

(defrule reclaim-on-overshoot
  (overshoot ?p ?policy)
  =>
  (call reclaim-cpu ?p 1))
`

// managedProc is one process under the host manager's control.
type managedProc struct {
	proc runtime.ProcHandle
	id   msg.Identity
}

// HostManager is the per-host QoS manager: inference engine, rule base,
// fact repository and resource managers (Figure 1). It touches its
// environment only through the runtime seams (runtime.HostControl,
// runtime.ProcHandle, a Send function and — for pacing — whatever clock
// the telemetry registry carries), so the same manager runs under the
// virtual-clock simulator and in live wall-clock deployments.
type HostManager struct {
	addr string
	host runtime.HostControl
	send Send

	engine *rules.Engine
	cpu    *CPUManager
	mem    *MemoryManager

	domainAddr string

	procsByPID map[int]*managedProc
	procsByExe map[string]*managedProc

	// OnRestart, if set, re-spawns a failed executable (the paper's
	// "restarting a failed process" adaptation) and returns the new
	// process plus its identity for tracking; nil means restart is not
	// supported on this host.
	OnRestart func(executable string) (runtime.ProcHandle, msg.Identity, bool)
	// OnUnknownProc, if set, resolves a violation report from a process
	// the manager is not yet tracking (live mode learns processes from
	// their registrations rather than at spawn). Returning ok tracks the
	// handle and lets the episode proceed; nil (the simulator's setting)
	// keeps the strict behavior: count a rule error and drop the report.
	OnUnknownProc func(id msg.Identity) (runtime.ProcHandle, bool)
	// Restarts counts restart directives executed.
	Restarts int

	// Statistics for experiment reports.
	ViolationsSeen uint64
	OvershootsSeen uint64
	Escalations    uint64
	Adaptations    uint64
	RuleErrors     uint64
	HeartbeatsSeen uint64
	AgentsEvicted  uint64

	// Liveness tracking (EnableLiveness): any message from a managed
	// process counts as contact; CheckLiveness evicts processes silent
	// for longer than the timeout.
	livenessClock   telemetry.Clock
	livenessTimeout time.Duration
	lastSeen        map[int]time.Duration

	// Telemetry (optional; see SetTelemetry).
	metrics *hmMetrics
	tracer  *telemetry.Tracer
	// Episode context for trace attribution: rule callbacks fire
	// synchronously inside handleViolation's engine.Run, so the subject
	// and policy of the report being diagnosed attribute their actions.
	epSubject string
	epPolicy  string
	epCtx     telemetry.TraceContext
	// evlog, when set, records evictions and re-adoptions as structured
	// events (component "hostmanager"). Nil is free.
	evlog *eventlog.Logger
}

// hmMetrics holds the host manager's pre-resolved metric handles.
type hmMetrics struct {
	violations  *telemetry.Counter
	overshoots  *telemetry.Counter
	escalations *telemetry.Counter
	adaptations *telemetry.Counter
	directives  *telemetry.Counter
	ruleErrors  *telemetry.Counter
	restarts    *telemetry.Counter
	firings     *telemetry.Histogram // rule firings per diagnosis episode
	inferNS     *telemetry.Histogram // wall-clock inference cost (profiling only)
	wall        telemetry.Clock

	// Lazy counters: registered on first use so fault-free registries
	// (and their determinism goldens) never see the names.
	reg     *telemetry.Registry
	prefix  string
	evicted *telemetry.Counter
}

// countEvicted bumps "manager.<host>.agents_evicted", resolving the
// counter on first eviction.
func (m *hmMetrics) countEvicted() {
	if m.evicted == nil {
		m.evicted = m.reg.Counter(m.prefix + "agents_evicted")
	}
	m.evicted.Inc()
}

// NewHostManager creates a host manager bound to addr on host, loading
// the default rule set. Pass domainAddr="" for hosts without a domain
// manager (escalations are then dropped and counted).
func NewHostManager(addr string, host runtime.HostControl, send Send, domainAddr string) *HostManager {
	hm := &HostManager{
		addr:       addr,
		host:       host,
		send:       send,
		domainAddr: domainAddr,
		engine:     rules.NewEngine(),
		cpu:        NewCPUManager(host),
		mem:        NewMemoryManager(host),
		procsByPID: make(map[int]*managedProc),
		procsByExe: make(map[string]*managedProc),
	}
	hm.cpu.SetSpanFunc(func(stage, detail string) { hm.traceEvent("cpu-manager", stage, detail) })
	hm.mem.SetSpanFunc(func(stage, detail string) { hm.traceEvent("memory-manager", stage, detail) })
	hm.registerCallbacks()
	if err := hm.engine.LoadRulesOrigin("host-default", DefaultHostRules); err != nil {
		panic("manager: default host rules do not parse: " + err.Error())
	}
	return hm
}

// Addr returns the manager's management address.
func (hm *HostManager) Addr() string { return hm.addr }

// SetTelemetry attaches the host manager to a metrics registry and
// (optionally) a violation tracer. Metric names are scoped by host, e.g.
// "manager.client-host.violations". Inference wall-cost is recorded only
// when the registry has a wall clock.
func (hm *HostManager) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	hm.tracer = tracer
	if tracer != nil {
		hm.engine.OnFiring = hm.explainFiring
	} else {
		hm.engine.OnFiring = nil
	}
	if reg == nil {
		hm.metrics = nil
		return
	}
	prefix := "manager." + hm.host.Name() + "."
	hm.metrics = &hmMetrics{
		reg:         reg,
		prefix:      prefix,
		violations:  reg.Counter(prefix + "violations"),
		overshoots:  reg.Counter(prefix + "overshoots"),
		escalations: reg.Counter(prefix + "escalations"),
		adaptations: reg.Counter(prefix + "adaptations"),
		directives:  reg.Counter(prefix + "directives"),
		ruleErrors:  reg.Counter(prefix + "rule_errors"),
		restarts:    reg.Counter(prefix + "restarts"),
		firings:     reg.Histogram(prefix+"rule_firings", 0),
		inferNS:     reg.Histogram(prefix+"inference_ns", 0),
		wall:        reg.WallClock(),
	}
}

// SetEventLog attaches the structured event log this manager records
// its silent decisions on (component "hostmanager"). Nil detaches.
func (hm *HostManager) SetEventLog(lg *eventlog.Logger) { hm.evlog = lg }

// traceEvent records a span emitted by src on the trace of the violation
// currently being diagnosed, parented under the episode's diagnosis span;
// a no-op outside an episode or without a tracer. It returns the span's
// context for propagation on outgoing messages.
func (hm *HostManager) traceEvent(src, stage, detail string) telemetry.TraceContext {
	if hm.tracer != nil && hm.epSubject != "" {
		return hm.tracer.EventCtx(hm.epCtx, hm.epSubject, hm.epPolicy, src, stage, detail)
	}
	return telemetry.TraceContext{}
}

// explainFiring is the inference engine's OnFiring hook: each rule
// activation executed during a diagnosis episode becomes an explanation
// record on the violation's trace — which facts matched which rule and
// what was asserted, retracted and called as a result.
func (hm *HostManager) explainFiring(f rules.Firing) {
	if hm.tracer == nil || hm.epSubject == "" {
		return
	}
	hm.tracer.Explain(hm.epCtx, hm.epSubject, hm.epPolicy, telemetry.Explanation{
		Engine:    hm.addr,
		Rule:      f.Rule,
		RuleSet:   f.Origin,
		Salience:  f.Salience,
		Bindings:  f.Bindings,
		Matched:   f.Matched,
		Asserted:  f.Asserted,
		Retracted: f.Retracted,
		Called:    f.Called,
	})
}

// countAdaptation bumps the adaptation counter (resource-manager actions
// taken on behalf of a diagnosis).
func (hm *HostManager) countAdaptation() {
	if hm.metrics != nil {
		hm.metrics.adaptations.Inc()
	}
}

// CPU returns the CPU resource manager.
func (hm *HostManager) CPU() *CPUManager { return hm.cpu }

// Memory returns the memory resource manager.
func (hm *HostManager) Memory() *MemoryManager { return hm.mem }

// Engine exposes the inference engine (tests and rule administration).
func (hm *HostManager) Engine() *rules.Engine { return hm.engine }

// LoadNamedRules replaces the rule set at run time, tagging every rule
// with the originating rule-set name so trace explanations report which
// distributed set produced each decision.
func (hm *HostManager) LoadNamedRules(name, src string) error {
	return hm.engine.LoadRulesOrigin(name, src)
}

// LoadRules replaces the rule set at run time (dynamic rule
// distribution).
func (hm *HostManager) LoadRules(src string) error { return hm.engine.LoadRules(src) }

// Track registers a process the manager may act upon. The prototype
// learned processes from their registration; scenarios call this at
// spawn. The process's role is asserted as a persistent fact so
// administrative rules can differentiate allocations by user role.
func (hm *HostManager) Track(p runtime.ProcHandle, id msg.Identity) {
	mp := &managedProc{proc: p, id: id}
	hm.procsByPID[id.PID] = mp
	hm.procsByExe[id.Executable] = mp
	if id.UserRole != "" {
		hm.engine.AssertF("proc-role", pidSym(id.PID), id.UserRole)
	}
	// A (re)tracked process is alive again: clear any down marker a
	// previous eviction asserted and start its liveness clock fresh.
	hm.engine.RetractMatching(rules.F("component-down", pidSym(id.PID), "?")...)
	hm.noteContact(id.PID)
}

// EnableLiveness arms heartbeat-based failure detection: every message
// from a managed process refreshes its last-contact time, and
// CheckLiveness evicts processes silent for longer than timeout.
// Disabled by default so fault-free simulations are unchanged.
func (hm *HostManager) EnableLiveness(clock telemetry.Clock, timeout time.Duration) {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	hm.livenessClock = clock
	hm.livenessTimeout = timeout
	hm.lastSeen = make(map[int]time.Duration, len(hm.procsByPID))
	for pid := range hm.procsByPID {
		hm.lastSeen[pid] = clock()
	}
}

// noteContact refreshes a process's liveness deadline; a no-op when
// liveness tracking is off.
func (hm *HostManager) noteContact(pid int) {
	if hm.lastSeen != nil {
		hm.lastSeen[pid] = hm.livenessClock()
	}
}

// handleHeartbeat processes a coordinator's liveness beacon. A beacon
// from a process the manager does not know — this manager restarted and
// lost its tracking tables — re-adopts it through OnUnknownProc, the
// self-healing half of the heartbeat protocol.
func (hm *HostManager) handleHeartbeat(hb msg.Heartbeat) {
	hm.HeartbeatsSeen++
	if _, known := hm.procsByPID[hb.ID.PID]; !known && hm.OnUnknownProc != nil {
		if p, ok := hm.OnUnknownProc(hb.ID); ok {
			hm.evlog.Event(eventlog.Info, "hostmanager", "proc_readopted",
				eventlog.Str("subject", hb.ID.Address()))
			hm.Track(p, hb.ID)
		}
	}
	hm.noteContact(hb.ID.PID)
}

// CheckLiveness evicts every managed process whose last contact is
// older than the liveness timeout: its tracking entries are dropped,
// its persistent facts retracted, a component-down fact is asserted so
// the rule base can reason about the dead component, and all of its
// open violation episodes are abandoned with the reason traced. It
// returns how many processes were evicted. PIDs are scanned in sorted
// order so simulated runs stay deterministic.
func (hm *HostManager) CheckLiveness() int {
	if hm.lastSeen == nil || hm.livenessTimeout <= 0 {
		return 0
	}
	now := hm.livenessClock()
	stale := make([]int, 0)
	for pid, seen := range hm.lastSeen {
		if now-seen > hm.livenessTimeout {
			stale = append(stale, pid)
		}
	}
	sort.Ints(stale)
	for _, pid := range stale {
		mp := hm.procsByPID[pid]
		psym := pidSym(pid)
		delete(hm.lastSeen, pid)
		if mp == nil {
			continue
		}
		delete(hm.procsByPID, pid)
		if hm.procsByExe[mp.id.Executable] == mp {
			delete(hm.procsByExe, mp.id.Executable)
		}
		hm.engine.RetractMatching(rules.F("proc-role", psym, "?")...)
		hm.engine.AssertF("component-down", psym, mp.id.Executable)
		hm.AgentsEvicted++
		if hm.metrics != nil {
			hm.metrics.countEvicted()
		}
		hm.evlog.Event(eventlog.Warn, "hostmanager", "agent_evicted",
			eventlog.Str("subject", mp.id.Address()),
			eventlog.Str("executable", mp.id.Executable))
		if hm.tracer != nil {
			hm.tracer.AbandonSubject(mp.id.Address(), "hostmanager",
				"component_down: no contact from "+mp.id.Executable+" within liveness timeout")
		}
	}
	return len(stale)
}

// Tracked returns the process registered for a PID, or nil.
func (hm *HostManager) Tracked(pid int) runtime.ProcHandle {
	if mp := hm.procsByPID[pid]; mp != nil {
		return mp.proc
	}
	return nil
}

func (hm *HostManager) registerCallbacks() {
	hm.engine.RegisterFunc("boost-cpu", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		if len(args) < 2 || args[1].Kind != rules.NumberKind {
			return fmt.Errorf("boost-cpu needs a numeric amount")
		}
		hm.cpu.Boost(mp.proc, int(args[1].Num))
		hm.countAdaptation()
		hm.cpu.Emit(telemetry.StageAdapt, fmt.Sprintf("boost-cpu %+d -> boost %d", int(args[1].Num), mp.proc.Boost()))
		return nil
	})
	hm.engine.RegisterFunc("reclaim-cpu", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		if len(args) < 2 || args[1].Kind != rules.NumberKind {
			return fmt.Errorf("reclaim-cpu needs a numeric amount")
		}
		hm.cpu.Boost(mp.proc, -int(args[1].Num))
		hm.countAdaptation()
		hm.cpu.Emit(telemetry.StageAdapt, fmt.Sprintf("reclaim-cpu %d", int(args[1].Num)))
		return nil
	})
	hm.engine.RegisterFunc("grant-rt", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		prio := 10
		if len(args) >= 2 && args[1].Kind == rules.NumberKind {
			prio = int(args[1].Num)
		}
		hm.cpu.GrantRealtime(mp.proc, prio)
		hm.countAdaptation()
		hm.cpu.Emit(telemetry.StageAdapt, fmt.Sprintf("grant-rt prio %d", prio))
		return nil
	})
	hm.engine.RegisterFunc("adjust-memory", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		if len(args) < 2 || args[1].Kind != rules.NumberKind {
			return fmt.Errorf("adjust-memory needs a numeric page delta")
		}
		hm.mem.Adjust(mp.proc, int(args[1].Num))
		hm.countAdaptation()
		hm.mem.Emit(telemetry.StageAdapt, fmt.Sprintf("adjust-memory %+d pages", int(args[1].Num)))
		return nil
	})
	hm.engine.RegisterFunc("cap-boost", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		if len(args) < 2 || args[1].Kind != rules.NumberKind {
			return fmt.Errorf("cap-boost needs a numeric cap")
		}
		if cap := int(args[1].Num); mp.proc.Boost() > cap {
			hm.cpu.Boost(mp.proc, cap-mp.proc.Boost())
			hm.countAdaptation()
			hm.cpu.Emit(telemetry.StageAdapt, fmt.Sprintf("cap-boost at %d", cap))
		}
		return nil
	})
	hm.engine.RegisterFunc("restore-memory", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		hm.mem.Ensure(mp.proc, mp.proc.WorkingSet())
		hm.countAdaptation()
		hm.mem.Emit(telemetry.StageAdapt, fmt.Sprintf("restore-memory to %d pages", mp.proc.WorkingSet()))
		return nil
	})
	hm.engine.RegisterFunc("request-adaptation", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		if len(args) < 3 || args[1].Kind != rules.SymbolKind || args[2].Kind != rules.NumberKind {
			return fmt.Errorf("request-adaptation needs (process actuator amount)")
		}
		hm.Adaptations++
		hm.countAdaptation()
		ctx := hm.traceEvent("hostmanager", telemetry.StageAdapt, fmt.Sprintf("request-adaptation %s %g", args[1].Sym, args[2].Num))
		dm := msg.Message{
			From: hm.addr,
			Body: msg.Directive{From: hm.addr, Action: "actuate",
				Target: args[1].Sym, Amount: args[2].Num},
		}
		if hm.epCtx.Valid() {
			dm.Trace = ctx
		}
		return hm.send(mp.id.Address()+"/qosl_coordinator", dm)
	})
	hm.engine.RegisterFunc("notify-domain", func(args []rules.Value) error {
		mp, err := hm.procArg(args, 0)
		if err != nil {
			return err
		}
		policy := ""
		if len(args) >= 2 {
			policy = args[1].Sym
		}
		hm.Escalations++
		if hm.metrics != nil {
			hm.metrics.escalations.Inc()
		}
		if hm.domainAddr == "" {
			hm.traceEvent("hostmanager", telemetry.StageEscalate, "dropped (no domain manager)")
			return nil
		}
		ctx := hm.traceEvent("hostmanager", telemetry.StageEscalate, "alarm -> "+hm.domainAddr)
		readings := hm.currentReadings(pidSym(mp.id.PID))
		am := msg.Message{
			From: hm.addr,
			Body: msg.Alarm{ID: mp.id, Policy: policy, Readings: readings, Suspect: "remote"},
		}
		if hm.epCtx.Valid() {
			am.Trace = ctx
		}
		return hm.send(hm.domainAddr, am)
	})
}

// procArg resolves the pid symbol in a rule callback argument.
func (hm *HostManager) procArg(args []rules.Value, i int) (*managedProc, error) {
	if len(args) <= i || args[i].Kind != rules.SymbolKind {
		return nil, fmt.Errorf("argument %d: expected process symbol", i)
	}
	pid, err := strconv.Atoi(strings.TrimPrefix(args[i].Sym, "p"))
	if err != nil {
		return nil, fmt.Errorf("argument %d: bad process symbol %q", i, args[i].Sym)
	}
	mp, ok := hm.procsByPID[pid]
	if !ok {
		return nil, fmt.Errorf("unknown process %s", args[i].Sym)
	}
	return mp, nil
}

// currentReadings extracts the episode's reading facts for escalation.
func (hm *HostManager) currentReadings(psym string) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range hm.engine.FactsMatching(rules.F("reading", psym, "?a", "?v")...) {
		if f.Len() == 4 && f.At(3).Kind == rules.NumberKind {
			out[f.At(2).Sym] = f.At(3).Num
		}
	}
	return out
}

// HandleMessage processes one inbound management message.
func (hm *HostManager) HandleMessage(m msg.Message) {
	switch body := m.Body.(type) {
	case *msg.Violation:
		hm.handleViolation(*body, m.Trace)
	case msg.Violation:
		hm.handleViolation(body, m.Trace)
	case *msg.Query:
		hm.handleQuery(m.From, *body, m.Trace)
	case msg.Query:
		hm.handleQuery(m.From, body, m.Trace)
	case *msg.Directive:
		hm.handleDirective(m.From, *body)
	case msg.Directive:
		hm.handleDirective(m.From, body)
	case *msg.Heartbeat:
		hm.handleHeartbeat(*body)
	case msg.Heartbeat:
		hm.handleHeartbeat(body)
	}
}

// handleViolation is one diagnosis episode: assert the report as facts,
// forward-chain, then retract the episode facts.
func (hm *HostManager) handleViolation(v msg.Violation, tc telemetry.TraceContext) {
	psym := pidSym(v.ID.PID)
	hm.noteContact(v.ID.PID)
	if _, known := hm.procsByPID[v.ID.PID]; !known {
		if hm.OnUnknownProc != nil {
			if p, ok := hm.OnUnknownProc(v.ID); ok {
				hm.Track(p, v.ID)
			}
		}
	}
	if _, known := hm.procsByPID[v.ID.PID]; !known {
		// A report for an untracked process cannot be acted upon.
		hm.RuleErrors++
		if hm.metrics != nil {
			hm.metrics.ruleErrors.Inc()
		}
		hm.evlog.EventCtx(tc, eventlog.Warn, "hostmanager", "untracked_violation",
			eventlog.Str("subject", v.ID.Address()))
		return
	}
	if v.Overshoot {
		hm.OvershootsSeen++
		if hm.metrics != nil {
			hm.metrics.overshoots.Inc()
		}
		hm.engine.AssertF("overshoot", psym, orUnknown(v.Policy))
	} else {
		hm.ViolationsSeen++
		if hm.metrics != nil {
			hm.metrics.violations.Inc()
		}
		hm.engine.AssertF("violation", psym, orUnknown(v.Policy))
		// Episode context: rule callbacks fired by Run attribute their
		// adaptations and escalations to this violation's trace, parented
		// under the diagnosis span (itself a child of the notify span the
		// report carried in its trace context).
		hm.epSubject, hm.epPolicy = v.ID.Address(), v.Policy
		hm.epCtx = tc
		if hm.tracer != nil {
			hm.epCtx = hm.tracer.EventCtx(tc, hm.epSubject, hm.epPolicy,
				"hostmanager", telemetry.StageDiagnose, "inference episode on "+hm.addr)
		}
	}
	for attr, val := range v.Readings {
		hm.engine.AssertF("reading", psym, attr, val)
	}
	hm.engine.AssertF("host-load", hm.host.LoadAvg())
	hm.engine.AssertF("proc-boost", psym, float64(hm.procsByPID[v.ID.PID].proc.Boost()))
	var inferStart time.Duration
	if hm.metrics != nil && hm.metrics.wall != nil {
		inferStart = hm.metrics.wall()
	}
	fired, err := hm.engine.Run(100)
	if hm.metrics != nil {
		if hm.metrics.wall != nil {
			hm.metrics.inferNS.ObserveDuration(hm.metrics.wall() - inferStart)
		}
		hm.metrics.firings.Observe(float64(fired))
	}
	if err != nil {
		hm.RuleErrors++
		if hm.metrics != nil {
			hm.metrics.ruleErrors.Inc()
		}
	}
	hm.epSubject, hm.epPolicy, hm.epCtx = "", "", telemetry.TraceContext{}
	// Clear the episode; persistent facts (deffacts thresholds) remain.
	hm.engine.RetractMatching(rules.F("violation", psym, "?")...)
	hm.engine.RetractMatching(rules.F("overshoot", psym, "?")...)
	hm.engine.RetractMatching(rules.F("reading", psym, "?", "?")...)
	hm.engine.RetractMatching(rules.F("host-load", "?")...)
	hm.engine.RetractMatching(rules.F("proc-boost", psym, "?")...)
	hm.engine.RetractMatching(rules.F("diagnosis", psym, "?")...)
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// handleQuery answers statistic queries from the domain manager.
func (hm *HostManager) handleQuery(replyTo string, q msg.Query, tc telemetry.TraceContext) {
	values := make(map[string]float64, len(q.Keys))
	for _, k := range q.Keys {
		switch {
		case k == "cpu_load":
			values[k] = hm.host.LoadAvg()
		case k == "mem_usage":
			phys := float64(hm.host.PhysPages())
			if phys > 0 {
				values[k] = 1 - float64(hm.host.FreePages())/phys
			}
		case k == "run_queue":
			values[k] = float64(hm.host.RunQueueLen())
		case strings.HasPrefix(k, "proc_cpu:"):
			exe := strings.TrimPrefix(k, "proc_cpu:")
			// A dead process reports nothing: the missing key is how the
			// domain manager detects process failure.
			if mp, ok := hm.procsByExe[exe]; ok && mp.proc.Alive() {
				values[k] = mp.proc.CPUTime().Seconds()
			}
		case strings.HasPrefix(k, "proc_boost:"):
			exe := strings.TrimPrefix(k, "proc_boost:")
			if mp, ok := hm.procsByExe[exe]; ok {
				values[k] = float64(mp.proc.Boost())
			}
		}
	}
	_ = hm.send(replyTo, msg.Message{
		From:  hm.addr,
		Trace: tc,
		Body:  msg.Report{Host: hm.host.Name(), Values: values, Ref: q.Ref},
	})
}

// handleDirective executes a corrective action pushed by the domain
// manager.
func (hm *HostManager) handleDirective(replyTo string, d msg.Directive) {
	if hm.metrics != nil {
		hm.metrics.directives.Inc()
	}
	var err error
	mp, ok := hm.procsByExe[d.Target]
	if !ok {
		err = fmt.Errorf("manager: no tracked process for executable %q", d.Target)
	} else {
		switch d.Action {
		case "boost_cpu":
			hm.cpu.Boost(mp.proc, int(d.Amount))
		case "reclaim_cpu":
			hm.cpu.Boost(mp.proc, -int(d.Amount))
		case "grant_rt":
			hm.cpu.GrantRealtime(mp.proc, int(d.Amount))
		case "adjust_memory":
			hm.mem.Adjust(mp.proc, int(d.Amount))
		case "restart_proc":
			if hm.OnRestart == nil {
				err = fmt.Errorf("manager: restart not supported on %s", hm.host.Name())
				break
			}
			if mp.proc.Alive() {
				err = fmt.Errorf("manager: %s is still running", d.Target)
				break
			}
			np, nid, ok := hm.OnRestart(d.Target)
			if !ok {
				err = fmt.Errorf("manager: restart of %s failed", d.Target)
				break
			}
			hm.Track(np, nid)
			hm.Restarts++
			if hm.metrics != nil {
				hm.metrics.restarts.Inc()
			}
		default:
			err = fmt.Errorf("manager: unknown directive %q", d.Action)
		}
	}
	ack := msg.Ack{Ref: d.Action + ":" + d.Target, OK: err == nil}
	if err != nil {
		ack.Err = err.Error()
	}
	_ = hm.send(replyTo, msg.Message{From: hm.addr, Body: ack})
}

// MemUsage reports the host's memory utilisation fraction.
func (hm *HostManager) MemUsage() float64 {
	phys := float64(hm.host.PhysPages())
	if phys == 0 {
		return 0
	}
	return 1 - float64(hm.host.FreePages())/phys
}

// ReactionBudget is documentation of the control loop's pacing: the
// coordinator paces violation reports (default 500 ms) and each report
// triggers at most one adjustment per rule, so the system applies at most
// ~2 corrective steps per second per process.
const ReactionBudget = 500 * time.Millisecond
