package manager

import (
	"strconv"
	"time"

	"softqos/internal/msg"
	"softqos/internal/telemetry"
	"softqos/internal/telemetry/eventlog"
)

// The hierarchical control plane: host managers register with a domain
// manager, domain managers register with a region manager, reusing the
// flat topology's registration/heartbeat/liveness machinery at every
// tier. Queries fan out *down* the tree — a region asks only the
// domains whose aggregated state implicates them, a domain asks only
// its own hosts — and alarms batch and aggregate *up* (AlarmCoalescer,
// msg.AlarmBatch). Everything in this file is dormant until a scenario
// wires it: a flat 2-tier system never registers hosts with its domain
// manager, so its behavior (and its determinism goldens) is unchanged.

// Trace tier depths of the management hierarchy.
const (
	TierHost   = 1
	TierDomain = 2
	TierRegion = 3
)

// SetTier records the manager's depth in the management hierarchy;
// spans it emits carry the tier. Zero (the default) marks the flat
// topology and renders exactly as before tiers existed.
func (dm *DomainManager) SetTier(tier int) { dm.tier = tier }

// SetUplink attaches the coalescer that batches this domain's alarm
// traffic toward its parent tier.
func (dm *DomainManager) SetUplink(c *AlarmCoalescer) { dm.uplink = c }

// SetHostTimeout decouples host-roster eviction from the (typically
// much shorter) episode/fan-out timeout: hosts heartbeat on a slow
// period and must not be evicted between beats. Zero falls back to the
// liveness timeout.
func (dm *DomainManager) SetHostTimeout(d time.Duration) { dm.hostTimeout = d }

// Uplink returns the attached coalescer, if any.
func (dm *DomainManager) Uplink() *AlarmCoalescer { return dm.uplink }

// HostCount returns how many host managers are registered below this
// domain manager.
func (dm *DomainManager) HostCount() int { return len(dm.hostOrder) }

// HostAddrs returns the registered host manager addresses in
// registration order.
func (dm *DomainManager) HostAddrs() []string {
	addrs := make([]string, 0, len(dm.hostOrder))
	for _, name := range dm.hostOrder {
		addrs = append(addrs, dm.hosts[name])
	}
	return addrs
}

func (dm *DomainManager) nowOr0() time.Duration {
	if dm.livenessClock == nil {
		return 0
	}
	return dm.livenessClock()
}

// handleHostRegister adopts a child host manager: the same protocol a
// coordinator speaks to the policy agent, reused one tier up. The host
// is keyed by its identity's Host name; re-registration (a restarted
// host manager) rebinds the address and refreshes liveness.
func (dm *DomainManager) handleHostRegister(b msg.Register, from string) {
	if from == "" {
		return
	}
	name := b.ID.Host
	if name == "" {
		name = from
	}
	if dm.hosts == nil {
		dm.hosts = make(map[string]string)
		dm.hostSeen = make(map[string]time.Duration)
	}
	if _, known := dm.hosts[name]; !known {
		dm.hostOrder = append(dm.hostOrder, name)
		dm.evlog.Event(eventlog.Debug, "domainmanager", "host_adopted",
			eventlog.Str("host", name))
	}
	dm.hosts[name] = from
	dm.hostSeen[name] = dm.nowOr0()
	_ = dm.send(from, msg.Message{From: dm.addr,
		Body: msg.Ack{Ref: "register", OK: true}})
}

// handleHostHeartbeat refreshes a registered host's liveness deadline.
// A heartbeat from a host this manager does not know re-adopts it (the
// self-healing path after a domain manager restart), mirroring the
// host manager's OnUnknownProc re-adoption.
func (dm *DomainManager) handleHostHeartbeat(hb msg.Heartbeat, from string) {
	name := hb.ID.Host
	if _, known := dm.hosts[name]; !known {
		if from == "" {
			return
		}
		dm.evlog.Event(eventlog.Info, "domainmanager", "host_readopted",
			eventlog.Str("host", name))
		dm.handleHostRegister(msg.Register{ID: hb.ID}, from)
		return
	}
	dm.hostSeen[name] = dm.nowOr0()
}

// handleTierQuery answers a downward localization query from the parent
// tier by fanning it out to this domain's hosts — and only them. The
// per-host replies are aggregated (max per statistic) into one Report
// back to the requester, so the parent never sees per-host traffic.
func (dm *DomainManager) handleTierQuery(q msg.Query, tc telemetry.TraceContext) {
	if q.From == "" {
		return
	}
	dm.Fanouts++
	if len(dm.hostOrder) == 0 {
		_ = dm.send(q.From, msg.Message{From: dm.addr, Trace: tc, Body: msg.Report{
			Host: dm.addr, Ref: q.Ref,
			Values: map[string]float64{"hosts_asked": 0, "hosts_reporting": 0},
		}})
		return
	}
	dm.nextRef++
	iref := "f" + strconv.Itoa(dm.nextRef)
	f := &fanout{
		requester: q.From,
		ref:       q.Ref,
		keys:      q.Keys,
		asked:     len(dm.hostOrder),
		pending:   make(map[string]string, len(dm.hostOrder)),
		values:    make(map[string]float64, len(q.Keys)),
		ctx:       tc,
		at:        dm.nowOr0(),
	}
	if dm.fanouts == nil {
		dm.fanouts = make(map[string]*fanout)
	}
	dm.fanouts[iref] = f
	if dm.metrics != nil {
		dm.metrics.countFanout(f.asked)
	}
	for _, name := range dm.hostOrder {
		f.pending[name] = dm.hosts[name]
	}
	dm.FanoutQueries += uint64(f.asked)
	for _, name := range dm.hostOrder {
		_ = dm.send(dm.hosts[name], msg.Message{From: dm.addr, Trace: tc,
			Body: msg.Query{From: dm.addr, Keys: q.Keys, Ref: iref}})
	}
}

// handleFanoutReport folds one host's reply into the fan-out aggregate
// and completes the fan-out when every host (or every surviving host,
// after retry/abandonment) has answered.
func (dm *DomainManager) handleFanoutReport(iref string, f *fanout, r msg.Report) {
	if _, waiting := f.pending[r.Host]; !waiting {
		return // duplicate or post-abandon straggler
	}
	delete(f.pending, r.Host)
	f.reports++
	dm.hostContact(r.Host)
	for k, v := range r.Values {
		if cur, ok := f.values[k+"_max"]; !ok || v > cur {
			f.values[k+"_max"] = v
		}
		if k == "cpu_load" && (f.hotHost == "" || v > f.hotLoad) {
			f.hotHost = dm.hosts[r.Host]
			f.hotLoad = v
		}
	}
	if len(f.pending) == 0 {
		dm.completeFanout(iref, f)
	}
}

// hostContact refreshes liveness for a registered host (any message
// from it counts as contact, as with managed processes).
func (dm *DomainManager) hostContact(name string) {
	if _, known := dm.hosts[name]; known {
		dm.hostSeen[name] = dm.nowOr0()
	}
}

// completeFanout replies to the requester with the aggregate and closes
// the fan-out. The domain remembers the hottest host so a subsequent
// downward directive can be routed to it.
func (dm *DomainManager) completeFanout(iref string, f *fanout) {
	f.values["hosts_asked"] = float64(f.asked)
	f.values["hosts_reporting"] = float64(f.reports)
	if f.hotHost != "" {
		dm.lastHot = f.hotHost
	}
	_ = dm.send(f.requester, msg.Message{From: dm.addr, Trace: f.ctx, Body: msg.Report{
		Host: dm.addr, Values: f.values, Ref: f.ref,
	}})
	delete(dm.fanouts, iref)
}

// handleTierDirective routes a corrective directive from the parent
// tier down to the host the last fan-out implicated. A directive with
// no implicated host is dropped — the parent acted on stale aggregates.
func (dm *DomainManager) handleTierDirective(d msg.Directive, tc telemetry.TraceContext) {
	if dm.lastHot == "" {
		return
	}
	dm.DirectivesRouted++
	_ = dm.send(dm.lastHot, msg.Message{From: dm.addr, Trace: tc,
		Body: msg.Directive{From: dm.addr, Action: d.Action, Target: d.Target, Amount: d.Amount}})
}

// checkFanouts sweeps pending fan-outs the way CheckLiveness sweeps
// episodes — but a retry re-queries ONLY the hosts that have not
// reported (the hosts that did answer must not be asked again), and a
// fan-out that expires after its retry completes with the partial
// aggregate rather than pending forever.
func (dm *DomainManager) checkFanouts(now time.Duration) (retried, abandoned int) {
	if len(dm.fanouts) == 0 {
		return 0, 0
	}
	for _, iref := range sortedKeys(dm.fanouts) {
		f := dm.fanouts[iref]
		if now-f.at <= dm.livenessTimeout {
			continue
		}
		if !f.retried {
			f.retried = true
			f.at = now
			dm.QueryRetries++
			if dm.metrics != nil {
				dm.metrics.countQueryRetry()
			}
			dm.evlog.EventCtx(f.ctx, eventlog.Info, "domainmanager", "fanout_retry",
				eventlog.Str("ref", iref), eventlog.Int("pending", len(f.pending)))
			for _, name := range sortedKeys(f.pending) {
				_ = dm.send(f.pending[name], msg.Message{From: dm.addr, Trace: f.ctx,
					Body: msg.Query{From: dm.addr, Keys: f.keys, Ref: iref}})
			}
			retried++
			continue
		}
		dm.EpisodeTimeouts++
		if dm.metrics != nil {
			dm.metrics.countTimeout()
		}
		dm.evlog.EventCtx(f.ctx, eventlog.Warn, "domainmanager", "fanout_abandoned",
			eventlog.Str("ref", iref), eventlog.Int("reported", f.reports),
			eventlog.Int("asked", f.asked))
		dm.completeFanout(iref, f)
		abandoned++
	}
	return retried, abandoned
}

// checkHosts evicts registered hosts whose last contact is older than
// the liveness timeout, in sorted order for deterministic runs.
func (dm *DomainManager) checkHosts(now time.Duration) int {
	if len(dm.hosts) == 0 {
		return 0
	}
	timeout := dm.hostTimeout
	if timeout <= 0 {
		timeout = dm.livenessTimeout
	}
	evicted := 0
	for _, name := range sortedKeys(dm.hosts) {
		silent := now - dm.hostSeen[name]
		if silent <= timeout {
			continue
		}
		delete(dm.hosts, name)
		delete(dm.hostSeen, name)
		for i, n := range dm.hostOrder {
			if n == name {
				dm.hostOrder = append(dm.hostOrder[:i], dm.hostOrder[i+1:]...)
				break
			}
		}
		dm.HostsEvicted++
		if dm.metrics != nil {
			dm.metrics.countHostEvicted()
		}
		dm.evlog.Event(eventlog.Warn, "domainmanager", "host_evicted",
			eventlog.Str("host", name),
			eventlog.Num("silent_ns", float64(silent)))
		if dm.OnHostEvicted != nil {
			dm.OnHostEvicted(name)
		}
		evicted++
	}
	return evicted
}
