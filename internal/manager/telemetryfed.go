package manager

import (
	"time"

	"softqos/internal/msg"
	"softqos/internal/telemetry"
)

// DefaultTelemetryWindow is the flush window federated telemetry tiers
// use when the caller does not choose one: hosts (and domains) ship one
// summary every window.
const DefaultTelemetryWindow = 10 * time.Second

// SummaryExporter is the host-side half of the federated telemetry
// plane: a per-host telemetry.Summary that observers fill between
// flushes, shipped to the parent tier as one msg.TelemetrySummary per
// window and reset. Like the AlarmCoalescer it is driven by the owning
// runtime's single-threaded loop via the injected timer; unlike the
// coalescer it re-arms unconditionally (telemetry is periodic, not
// bursty). It deliberately has no registry attachment — at fleet scale
// there is one exporter per host, and per-host counters are exactly the
// state federation exists to avoid.
type SummaryExporter struct {
	tier   string
	addr   string // owning component's address (From and Source)
	parent string
	send   Send

	window time.Duration
	after  func(time.Duration, func())

	sum *telemetry.Summary
	seq uint64

	// Statistics.
	Exported uint64 // summaries shipped
	Skipped  uint64 // windows with nothing to ship
}

// NewSummaryExporter creates an exporter shipping addr's telemetry to
// parent every window (DefaultTelemetryWindow when <= 0).
func NewSummaryExporter(tier, addr, parent string, send Send,
	window time.Duration, after func(time.Duration, func())) *SummaryExporter {
	if window <= 0 {
		window = DefaultTelemetryWindow
	}
	return &SummaryExporter{
		tier: tier, addr: addr, parent: parent, send: send,
		window: window, after: after, sum: telemetry.NewSummary(),
	}
}

// Summary returns the accumulator observers record into. Handles
// resolved from it (Sketch) stay valid across flushes.
func (e *SummaryExporter) Summary() *telemetry.Summary { return e.sum }

// Start arms the periodic flush timer. Call once, after the owning
// component is wired to its transport.
func (e *SummaryExporter) Start() { e.after(e.window, e.tick) }

func (e *SummaryExporter) tick() {
	_ = e.FlushNow()
	e.after(e.window, e.tick)
}

// FlushNow closes the current window immediately: an empty window ships
// nothing (and counts as skipped), anything else ships one summary and
// resets the accumulator.
func (e *SummaryExporter) FlushNow() error {
	if e.sum.Empty() {
		e.Skipped++
		return nil
	}
	e.seq++
	counters, maxima, sketches := e.sum.Export()
	e.sum.Reset()
	e.Exported++
	return e.send(e.parent, msg.Message{From: e.addr, Body: msg.TelemetrySummary{
		Tier: e.tier, Source: e.addr, Seq: e.seq, Hosts: 1,
		Counters: counters, Maxima: maxima, Sketches: sketches,
	}})
}

// childAgg is one direct child's cumulative aggregate, kept only by
// terminal aggregators asked to break the fleet down per child.
type childAgg struct {
	sum       *telemetry.Summary
	hosts     uint64 // latest Hosts figure the child reported
	summaries uint64
}

// SummaryAggregator is the mid- and top-tier half of the federated
// telemetry plane. A domain runs one with a parent: inbound host
// summaries merge into the current window's aggregate, which ships
// upward as one domain-tier summary per window — so the region's
// telemetry fan-in is the domain count, not the host count. The region
// runs a terminal one (parent ""): everything merges into a cumulative
// fleet summary, optionally broken down per direct child, and is never
// re-shipped. All merges are exact (sketch bucket addition, counter
// addition, max-merge), so the fleet aggregate is independent of
// arrival order and of how hosts are spread across domains.
type SummaryAggregator struct {
	tier   string
	addr   string
	parent string // "" = terminal: aggregate only, never forward
	send   Send

	window time.Duration
	after  func(time.Duration, func())
	armed  bool

	win      *telemetry.Summary // current window (forwarding aggregators)
	total    *telemetry.Summary // cumulative since start
	winHosts map[string]uint64  // source -> hosts covered, this window
	seq      uint64

	keepChildren bool
	children     map[string]*childAgg

	// Statistics.
	Ingested  uint64            // summaries absorbed
	Flushes   uint64            // window flushes shipped upward
	hostsSeen map[string]uint64 // source -> latest hosts (terminal tally)

	// Eager counters: aggregators only exist in federated runs, so
	// registering at attach time cannot perturb non-federated name sets.
	reg        *telemetry.Registry
	cSummaries *telemetry.Counter
	cFlushes   *telemetry.Counter
}

// NewSummaryAggregator creates an aggregator for tier at addr. With a
// parent it re-exports each window's merged aggregate upward; with
// parent "" it is terminal and only accumulates. window defaults to
// DefaultTelemetryWindow when <= 0.
func NewSummaryAggregator(tier, addr, parent string, send Send,
	window time.Duration, after func(time.Duration, func())) *SummaryAggregator {
	if window <= 0 {
		window = DefaultTelemetryWindow
	}
	return &SummaryAggregator{
		tier: tier, addr: addr, parent: parent, send: send,
		window: window, after: after,
		win: telemetry.NewSummary(), total: telemetry.NewSummary(),
		winHosts:  make(map[string]uint64),
		hostsSeen: make(map[string]uint64),
	}
}

// SetKeepChildren makes the aggregator keep one cumulative aggregate
// per direct child (the region keeps per-domain breakdowns; domains
// keep nothing per host — that is the point of federation).
func (g *SummaryAggregator) SetKeepChildren(keep bool) {
	g.keepChildren = keep
	if keep && g.children == nil {
		g.children = make(map[string]*childAgg)
	}
}

// SetTelemetry attaches aggregate flow counters
// (telemetry.fed.<tier>.summaries / .flushes). Aggregators of the same
// tier share the names deliberately: the counters measure the tier's
// total federation traffic, not one aggregator's.
func (g *SummaryAggregator) SetTelemetry(reg *telemetry.Registry) {
	g.reg = reg
	g.cSummaries = reg.Counter("telemetry.fed." + g.tier + ".summaries")
	g.cFlushes = reg.Counter("telemetry.fed." + g.tier + ".flushes")
}

// Ingest absorbs one inbound summary. Forwarding aggregators also merge
// it into the current window and arm the flush timer, coalescer-style.
func (g *SummaryAggregator) Ingest(ts msg.TelemetrySummary) {
	g.Ingested++
	if g.cSummaries != nil {
		g.cSummaries.Inc()
	}
	hosts := ts.Hosts
	if hosts == 0 {
		hosts = 1
	}
	g.hostsSeen[ts.Source] = hosts
	g.total.Absorb(ts.Counters, ts.Maxima, ts.Sketches)
	if g.keepChildren {
		c, ok := g.children[ts.Source]
		if !ok {
			c = &childAgg{sum: telemetry.NewSummary()}
			g.children[ts.Source] = c
		}
		c.sum.Absorb(ts.Counters, ts.Maxima, ts.Sketches)
		c.hosts = hosts
		c.summaries++
	}
	if g.parent == "" {
		return
	}
	g.win.Absorb(ts.Counters, ts.Maxima, ts.Sketches)
	g.winHosts[ts.Source] = hosts
	if !g.armed {
		g.armed = true
		g.after(g.window, g.timerFlush)
	}
}

// AddLocal merges one locally produced counter increment into the
// aggregator's own state — the path a domain tier's event-log counters
// ride so they federate upward inside the existing window flush instead
// of as extra messages. Forwarding aggregators also fold the increment
// into the current window and arm the flush timer; the local tier does
// not inflate the window's host coverage.
func (g *SummaryAggregator) AddLocal(name string, delta float64) {
	g.total.AddCounter(name, delta)
	if g.keepChildren {
		c, ok := g.children[g.addr]
		if !ok {
			c = &childAgg{sum: telemetry.NewSummary()}
			g.children[g.addr] = c
		}
		c.sum.AddCounter(name, delta)
	}
	if g.parent == "" {
		return
	}
	g.win.AddCounter(name, delta)
	if !g.armed {
		g.armed = true
		g.after(g.window, g.timerFlush)
	}
}

func (g *SummaryAggregator) timerFlush() {
	g.armed = false
	if !g.win.Empty() {
		_ = g.flush()
	}
}

// flush ships the window's merged aggregate one tier up as a single
// summary covering every host whose telemetry it merged.
func (g *SummaryAggregator) flush() error {
	var hosts uint64
	for _, n := range g.winHosts {
		hosts += n
	}
	for k := range g.winHosts {
		delete(g.winHosts, k)
	}
	g.seq++
	counters, maxima, sketches := g.win.Export()
	g.win.Reset()
	g.Flushes++
	if g.cFlushes != nil {
		g.cFlushes.Inc()
	}
	return g.send(g.parent, msg.Message{From: g.addr, Body: msg.TelemetrySummary{
		Tier: g.tier, Source: g.addr, Seq: g.seq, Hosts: hosts,
		Counters: counters, Maxima: maxima, Sketches: sketches,
	}})
}

// Hosts returns how many hosts the aggregator's cumulative state
// covers (the sum of each distinct source's latest coverage figure).
func (g *SummaryAggregator) Hosts() uint64 {
	var n uint64
	for _, h := range g.hostsSeen {
		n += h
	}
	return n
}

// Total returns the cumulative aggregate.
func (g *SummaryAggregator) Total() *telemetry.Summary { return g.total }

// FleetView renders the aggregator's cumulative state as the federated
// observability document: the merged fleet summary plus (for terminal
// aggregators keeping children) one name-sorted entry per direct child.
func (g *SummaryAggregator) FleetView() telemetry.FederatedView {
	v := telemetry.FederatedView{
		Tier:      g.tier,
		Hosts:     g.Hosts(),
		Summaries: g.Ingested,
		Fleet:     g.total.View(),
	}
	v.Fleet.Hosts = v.Hosts
	for _, name := range sortedKeys(g.children) {
		c := g.children[name]
		cv := telemetry.ChildView{
			Name: name, Hosts: c.hosts, Summaries: c.summaries,
			Summary: c.sum.View(),
		}
		cv.Summary.Hosts = c.hosts
		v.Children = append(v.Children, cv)
	}
	return v
}
