package manager

import (
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

// fedSink captures shipped telemetry summaries with their send times.
func fedSink(s *sim.Simulator) (*[]msg.TelemetrySummary, *[]time.Duration, Send) {
	var sums []msg.TelemetrySummary
	var at []time.Duration
	send := func(to string, m msg.Message) error {
		if to != "/parent" {
			return nil
		}
		sums = append(sums, m.Body.(msg.TelemetrySummary))
		at = append(at, s.Now().Duration())
		return nil
	}
	return &sums, &at, send
}

// TestSummaryExporterPeriodicFlush: the exporter ships one summary per
// window on the injected clock, resets between windows, and skips empty
// windows entirely — an idle host costs zero telemetry traffic.
func TestSummaryExporterPeriodicFlush(t *testing.T) {
	s := sim.New(1)
	sums, at, send := fedSink(s)
	e := NewSummaryExporter("host", "/h1", "/parent", send,
		10*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	load := e.Summary().Sketch("fleet.load")

	// Window 1 has data; windows 2 and 3 are idle; window 4 has data.
	s.Schedule(sim.Time(2*time.Second), func() {
		load.Observe(0.8)
		e.Summary().AddCounter("fleet.samples", 1)
	})
	s.Schedule(sim.Time(33*time.Second), func() { load.Observe(2.5) })
	s.Schedule(sim.Time(0), e.Start)
	s.RunFor(45 * time.Second)

	if len(*sums) != 2 {
		t.Fatalf("shipped %d summaries, want 2", len(*sums))
	}
	if (*at)[0] != 10*time.Second || (*at)[1] != 40*time.Second {
		t.Fatalf("flush times %v, want [10s 40s]", *at)
	}
	first := (*sums)[0]
	if first.Tier != "host" || first.Source != "/h1" || first.Seq != 1 || first.Hosts != 1 {
		t.Fatalf("first summary header wrong: %+v", first)
	}
	if first.Counters["fleet.samples"] != 1 || len(first.Sketches) != 1 ||
		first.Sketches[0].Sketch.Count != 1 {
		t.Fatalf("first summary payload wrong: %+v", first)
	}
	// The second shipped window contains only the second observation —
	// the reset really closed the first window.
	second := (*sums)[1]
	if second.Seq != 2 || second.Counters != nil || second.Sketches[0].Sketch.Count != 1 {
		t.Fatalf("second summary not a clean window: %+v", second)
	}
	if e.Exported != 2 || e.Skipped != 2 {
		t.Fatalf("exported=%d skipped=%d, want 2/2", e.Exported, e.Skipped)
	}
	// Validate on the wire form: what the exporter ships must pass the
	// protocol's own checks.
	for _, ts := range *sums {
		if err := msg.Validate(msg.Message{From: "/h1", Body: ts}); err != nil {
			t.Fatalf("shipped summary fails validation: %v", err)
		}
	}
}

// TestSummaryAggregatorForwardsMergedWindow: a domain-tier aggregator
// merges inbound host summaries and ships ONE summary per window
// upward, covering every host it merged — the fan-in reduction that
// keeps the region's telemetry load at the domain count.
func TestSummaryAggregatorForwardsMergedWindow(t *testing.T) {
	s := sim.New(1)
	sums, at, send := fedSink(s)
	g := NewSummaryAggregator("domain", "/d1", "/parent", send,
		10*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })

	hostSummary := func(src string, samples float64, load ...float64) msg.TelemetrySummary {
		sk := telemetry.NewSketch()
		for _, v := range load {
			sk.Observe(v)
		}
		return msg.TelemetrySummary{
			Tier: "host", Source: src, Seq: 1, Hosts: 1,
			Counters: map[string]float64{"fleet.samples": samples},
			Maxima:   map[string]float64{"fleet.cpu_load_max": load[0]},
			Sketches: []telemetry.NamedSketchSnapshot{{Name: "fleet.load", Sketch: sk.Snapshot()}},
		}
	}
	s.Schedule(sim.Time(1*time.Second), func() { g.Ingest(hostSummary("/h1", 2, 0.5, 1.5)) })
	s.Schedule(sim.Time(4*time.Second), func() { g.Ingest(hostSummary("/h2", 3, 3.0, 0.2, 0.9)) })
	s.RunFor(30 * time.Second)

	if len(*sums) != 1 {
		t.Fatalf("forwarded %d summaries, want 1 merged window", len(*sums))
	}
	// Window armed at first ingest (1s) and flushed one window later.
	if (*at)[0] != 11*time.Second {
		t.Fatalf("flush at %v, want 11s", (*at)[0])
	}
	up := (*sums)[0]
	if up.Tier != "domain" || up.Source != "/d1" || up.Hosts != 2 {
		t.Fatalf("upward summary header: %+v", up)
	}
	if up.Counters["fleet.samples"] != 5 {
		t.Errorf("merged counter = %v, want 5", up.Counters["fleet.samples"])
	}
	if up.Maxima["fleet.cpu_load_max"] != 3.0 {
		t.Errorf("merged max = %v, want 3.0", up.Maxima["fleet.cpu_load_max"])
	}
	if len(up.Sketches) != 1 || up.Sketches[0].Sketch.Count != 5 {
		t.Errorf("merged sketch: %+v", up.Sketches)
	}
	if g.Ingested != 2 || g.Flushes != 1 {
		t.Errorf("ingested=%d flushes=%d, want 2/1", g.Ingested, g.Flushes)
	}
	// The cumulative aggregate survives the window flush.
	if g.Total().Sketch("fleet.load").Count() != 5 {
		t.Error("window flush drained the cumulative aggregate")
	}
}

// TestSummaryAggregatorTerminal: a region-tier aggregator (parent "")
// only accumulates — it never re-ships, counts host coverage by latest
// report per source, and keeps per-child breakdowns when asked.
func TestSummaryAggregatorTerminal(t *testing.T) {
	s := sim.New(1)
	sums, _, send := fedSink(s)
	g := NewSummaryAggregator("region", "/r", "", send,
		10*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	g.SetKeepChildren(true)

	domainSummary := func(src string, hosts uint64, samples float64) msg.TelemetrySummary {
		return msg.TelemetrySummary{
			Tier: "domain", Source: src, Seq: 1, Hosts: hosts,
			Counters: map[string]float64{"fleet.samples": samples},
		}
	}
	s.Schedule(sim.Time(1*time.Second), func() { g.Ingest(domainSummary("/d1", 20, 100)) })
	s.Schedule(sim.Time(2*time.Second), func() { g.Ingest(domainSummary("/d2", 30, 200)) })
	// /d1 reports again: coverage uses the LATEST hosts figure, not a sum.
	s.Schedule(sim.Time(12*time.Second), func() { g.Ingest(domainSummary("/d1", 25, 50)) })
	s.RunFor(60 * time.Second)

	if len(*sums) != 0 {
		t.Fatalf("terminal aggregator shipped %d summaries upward", len(*sums))
	}
	if g.Hosts() != 55 {
		t.Errorf("hosts = %d, want 55 (latest 25 + 30)", g.Hosts())
	}
	v := g.FleetView()
	if v.Tier != "region" || v.Hosts != 55 || v.Summaries != 3 {
		t.Fatalf("fleet view header: %+v", v)
	}
	if len(v.Fleet.Counters) != 1 || v.Fleet.Counters[0].Value != 350 {
		t.Fatalf("fleet counter: %+v", v.Fleet.Counters)
	}
	// Children are name-sorted with their own cumulative aggregates.
	if len(v.Children) != 2 || v.Children[0].Name != "/d1" || v.Children[1].Name != "/d2" {
		t.Fatalf("children: %+v", v.Children)
	}
	d1 := v.Children[0]
	if d1.Hosts != 25 || d1.Summaries != 2 || d1.Summary.Counters[0].Value != 150 {
		t.Fatalf("/d1 child view: %+v", d1)
	}
}

// TestSummaryAggregatorCountersInRegistry: with SetTelemetry the
// aggregate flow shows up under telemetry.fed.<tier>.*.
func TestSummaryAggregatorCountersInRegistry(t *testing.T) {
	s := sim.New(1)
	_, _, send := fedSink(s)
	reg := telemetry.NewRegistry(nil)
	g := NewSummaryAggregator("domain", "/d", "/parent", send,
		10*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	g.SetTelemetry(reg)
	s.Schedule(sim.Time(0), func() {
		g.Ingest(msg.TelemetrySummary{Tier: "host", Source: "/h", Seq: 1,
			Counters: map[string]float64{"c": 1}})
	})
	s.RunFor(30 * time.Second)

	got := map[string]uint64{}
	for _, c := range reg.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	if got["telemetry.fed.domain.summaries"] != 1 || got["telemetry.fed.domain.flushes"] != 1 {
		t.Fatalf("fed counters: %v", got)
	}
}

// TestSummaryRoundTripThroughCodec: an exporter-shipped summary
// round-trips the negotiated binary codec and merges into an aggregator
// with nothing lost — the full host→wire→domain path in miniature.
func TestSummaryRoundTripThroughCodec(t *testing.T) {
	s := sim.New(1)
	var relayed []msg.TelemetrySummary
	relay := func(to string, m msg.Message) error {
		bin, err := msg.MarshalWire(msg.WireBinary, to, m)
		if err != nil {
			return err
		}
		_, rt, err := msg.UnmarshalWire(bin)
		if err != nil {
			return err
		}
		relayed = append(relayed, *rt.Body.(*msg.TelemetrySummary))
		return nil
	}
	e := NewSummaryExporter("host", "/h1", "/parent", relay,
		10*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	sk := e.Summary().Sketch("fleet.detect_adapt_ns")
	s.Schedule(sim.Time(0), func() {
		for i := 1; i <= 100; i++ {
			sk.ObserveDuration(time.Duration(i) * time.Millisecond)
		}
		e.Summary().AddCounter("fleet.adaptations", 100)
	})
	s.Schedule(sim.Time(0), e.Start)
	s.RunFor(15 * time.Second)

	if len(relayed) != 1 {
		t.Fatalf("relayed %d summaries, want 1", len(relayed))
	}
	g := NewSummaryAggregator("region", "/r", "", nil,
		10*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	g.Ingest(relayed[0])
	merged := g.Total().Sketch("fleet.detect_adapt_ns")
	if merged.Count() != 100 || merged.Min() != float64(time.Millisecond) ||
		merged.Max() != float64(100*time.Millisecond) {
		t.Fatalf("round-tripped sketch: count=%d min=%v max=%v",
			merged.Count(), merged.Min(), merged.Max())
	}
	if p50, ok := merged.Quantile(0.5); !ok || p50 <= 0 {
		t.Fatalf("round-tripped sketch has no quantiles (p50=%v)", p50)
	}
}
