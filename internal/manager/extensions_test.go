package manager

import (
	"strings"
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/sched"
	"softqos/internal/sim"
)

func TestHostManagerMiscAccessors(t *testing.T) {
	r := newRig(t, "")
	if r.hm.Addr() != "/client-host/QoSHostManager" {
		t.Errorf("Addr = %q", r.hm.Addr())
	}
	if r.hm.Tracked(r.id.PID) != r.proc {
		t.Error("Tracked did not return the registered process")
	}
	if r.hm.Tracked(424242) != nil {
		t.Error("Tracked returned a process for an unknown pid")
	}
	if mu := r.hm.MemUsage(); mu < 0.04 || mu > 0.06 {
		t.Errorf("MemUsage = %v, want 0.05", mu)
	}
	if len(r.hm.Engine().Rules()) == 0 {
		t.Error("default rules not loaded")
	}
}

func TestHostManagerDirectiveVariants(t *testing.T) {
	r := newRig(t, "")
	r.hm.HandleMessage(msg.Message{From: "/d", Body: msg.Directive{
		Action: "grant_rt", Target: "mpeg_play", Amount: 12}})
	if r.proc.Class() != sched.RT || r.proc.Priority() != 12 {
		t.Errorf("grant_rt: class=%v prio=%d", r.proc.Class(), r.proc.Priority())
	}
	r.proc.SetClass(sched.TS, 29)
	r.proc.SetBoost(10)
	r.hm.HandleMessage(msg.Message{From: "/d", Body: msg.Directive{
		Action: "reclaim_cpu", Target: "mpeg_play", Amount: 4}})
	if r.proc.Boost() != 6 {
		t.Errorf("reclaim_cpu boost = %d, want 6", r.proc.Boost())
	}
	// Pointer-body variants flow through the same paths.
	r.hm.HandleMessage(msg.Message{From: "/d", Body: &msg.Directive{
		Action: "boost_cpu", Target: "mpeg_play", Amount: 1}})
	if r.proc.Boost() != 7 {
		t.Errorf("pointer directive boost = %d, want 7", r.proc.Boost())
	}
	q := msg.Query{Keys: []string{"cpu_load"}, Ref: "p"}
	r.hm.HandleMessage(msg.Message{From: "/d", Body: &q})
	if len(r.sent) == 0 {
		t.Fatal("pointer query got no reply")
	}
}

func TestOverloadRulesRequestAdaptation(t *testing.T) {
	r := newRig(t, "")
	if err := r.hm.LoadRules(OverloadHostRules); err != nil {
		t.Fatal(err)
	}
	// Saturated boost: the adapt rule fires instead of boosting further.
	r.proc.SetBoost(45)
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 10, 12, false)})
	if r.hm.Adaptations != 1 {
		t.Fatalf("adaptations = %d", r.hm.Adaptations)
	}
	if len(r.sent) != 1 {
		t.Fatalf("sent %d messages", len(r.sent))
	}
	d, ok := r.sent[0].Body.(msg.Directive)
	if !ok || d.Action != "actuate" || d.Target != "frame_skip" || d.Amount != 3 {
		t.Errorf("directive = %+v", r.sent[0].Body)
	}
	if !strings.HasSuffix(r.to[0], "/qosl_coordinator") {
		t.Errorf("adaptation sent to %q", r.to[0])
	}
	// Below saturation the usual boost applies.
	r.proc.SetBoost(10)
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 10, 12, false)})
	if r.proc.Boost() != 25 {
		t.Errorf("boost below saturation = %d, want 25", r.proc.Boost())
	}
}

func TestMemoryAwareRulesRestoreResidentSet(t *testing.T) {
	r := newRig(t, "")
	if err := r.hm.LoadRules(MemoryAwareHostRules); err != nil {
		t.Fatal(err)
	}
	// Page the process out; host is otherwise idle (load < 1.5).
	r.host.SetResident(r.proc, 100)
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 10, 12, false)})
	if r.proc.Resident() != r.proc.WorkingSet() {
		t.Errorf("resident = %d, want restored to working set %d",
			r.proc.Resident(), r.proc.WorkingSet())
	}
	if r.proc.Boost() != 0 {
		t.Errorf("memory fault wrongly boosted CPU by %d", r.proc.Boost())
	}
}

func TestDifferentiatedRulesCapStudent(t *testing.T) {
	s := sim.New(1)
	host := sched.NewHost(s, "h")
	var sent []msg.Message
	hm := NewHostManager("/h/QoSHostManager", host, func(to string, m msg.Message) error {
		sent = append(sent, m)
		return nil
	}, "")
	if err := hm.LoadRules(DifferentiatedHostRules); err != nil {
		t.Fatal(err)
	}
	mk := func(role string) (*sched.Proc, msg.Identity) {
		p := host.Spawn(role, func(p *sched.Proc) { p.Sleep(time.Hour, func() { p.Exit() }) })
		id := msg.Identity{Host: "h", PID: p.PID(), Executable: role,
			Application: "VideoApplication", UserRole: role}
		hm.Track(p, id)
		return p, id
	}
	phys, physID := mk("physician")
	stud, studID := mk("student")

	for i := 0; i < 5; i++ {
		hm.HandleMessage(msg.Message{Body: violation(physID, 10, 12, false)})
		hm.HandleMessage(msg.Message{Body: violation(studID, 10, 12, false)})
	}
	if phys.Boost() < 40 {
		t.Errorf("physician boost = %d, want escalating", phys.Boost())
	}
	if stud.Boost() > 5 {
		t.Errorf("student boost = %d, want capped at 5", stud.Boost())
	}
	_ = sent
}

func TestDomainManagerAccessors(t *testing.T) {
	dm := NewDomainManager("/d", func(string, msg.Message) error { return nil })
	if dm.Addr() != "/d" {
		t.Errorf("Addr = %q", dm.Addr())
	}
	if len(dm.Engine().Rules()) != 4 {
		t.Errorf("domain rules = %v", dm.Engine().Rules())
	}
	// Replacing the rule set at run time.
	if err := dm.LoadRules(`(defrule x (a) => (log "a"))`); err != nil {
		t.Fatal(err)
	}
	if got := dm.Engine().Rules(); len(got) != 1 || got[0] != "x" {
		t.Errorf("after LoadRules: %v", got)
	}
	// Ack bodies are ignored without effect.
	dm.HandleMessage(msg.Message{Body: msg.Ack{Ref: "r", OK: true}})
	dm.HandleMessage(msg.Message{Body: &msg.Ack{Ref: "r", OK: true}})
}
