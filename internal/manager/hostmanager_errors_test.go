package manager

import (
	"strings"
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/runtime"
	"softqos/internal/sched"
)

// lastAck returns the most recent Ack the rig's host manager sent.
func lastAck(t *testing.T, r *rig) msg.Ack {
	t.Helper()
	if len(r.sent) == 0 {
		t.Fatal("no messages sent")
	}
	ack, ok := r.sent[len(r.sent)-1].Body.(msg.Ack)
	if !ok {
		t.Fatalf("last message body = %T, want Ack", r.sent[len(r.sent)-1].Body)
	}
	return ack
}

func directive(action, target string, amount float64) msg.Message {
	return msg.Message{From: "/domain", Body: msg.Directive{
		From: "/domain", Action: action, Target: target, Amount: amount}}
}

func TestHostManagerRestartNotSupported(t *testing.T) {
	r := newRig(t, "")
	r.hm.HandleMessage(directive("restart_proc", "mpeg_play", 0))
	ack := lastAck(t, r)
	if ack.OK || !strings.Contains(ack.Err, "restart not supported") {
		t.Errorf("ack = %+v, want restart-not-supported error", ack)
	}
	if r.hm.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0", r.hm.Restarts)
	}
}

func TestHostManagerRestartWhileStillRunning(t *testing.T) {
	r := newRig(t, "")
	r.hm.OnRestart = func(string) (runtime.ProcHandle, msg.Identity, bool) {
		t.Fatal("OnRestart called for a live process")
		return nil, msg.Identity{}, false
	}
	r.hm.HandleMessage(directive("restart_proc", "mpeg_play", 0))
	ack := lastAck(t, r)
	if ack.OK || !strings.Contains(ack.Err, "still running") {
		t.Errorf("ack = %+v, want still-running error", ack)
	}
}

// deadProcRig extends the base rig with a tracked process that has exited.
func deadProcRig(t *testing.T) (*rig, msg.Identity) {
	t.Helper()
	r := newRig(t, "")
	p := r.host.Spawn("mpeg_serve", func(p *sched.Proc) {
		p.Use(time.Millisecond, p.Exit)
	})
	id := msg.Identity{Host: "client-host", PID: p.PID(),
		Executable: "mpeg_serve", Application: "VideoApplication"}
	r.hm.Track(p, id)
	r.sim.RunFor(5 * time.Second)
	if p.State() != sched.Exited {
		t.Fatalf("setup: process state = %v, want exited", p.State())
	}
	return r, id
}

func TestHostManagerRestartCallbackFailure(t *testing.T) {
	r, _ := deadProcRig(t)
	r.hm.OnRestart = func(string) (runtime.ProcHandle, msg.Identity, bool) {
		return nil, msg.Identity{}, false
	}
	r.hm.HandleMessage(directive("restart_proc", "mpeg_serve", 0))
	ack := lastAck(t, r)
	if ack.OK || !strings.Contains(ack.Err, "restart of mpeg_serve failed") {
		t.Errorf("ack = %+v, want restart-failed error", ack)
	}
	if r.hm.Restarts != 0 {
		t.Errorf("Restarts = %d after failed restart", r.hm.Restarts)
	}
}

func TestHostManagerRestartSuccess(t *testing.T) {
	r, id := deadProcRig(t)
	r.hm.OnRestart = func(exe string) (runtime.ProcHandle, msg.Identity, bool) {
		np := r.host.Spawn(exe, func(p *sched.Proc) { p.Sleep(time.Hour, p.Exit) })
		nid := id
		nid.PID = np.PID()
		return np, nid, true
	}
	r.hm.HandleMessage(directive("restart_proc", "mpeg_serve", 0))
	ack := lastAck(t, r)
	if !ack.OK || ack.Ref != "restart_proc:mpeg_serve" {
		t.Fatalf("ack = %+v", ack)
	}
	if r.hm.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", r.hm.Restarts)
	}
	// The replacement is tracked under the same executable and is alive.
	mp, ok := r.hm.procsByExe["mpeg_serve"]
	if !ok || !mp.proc.Alive() {
		t.Error("replacement process not tracked after restart")
	}
}

func TestHostManagerQueryOmitsDeadProcessKeys(t *testing.T) {
	r, _ := deadProcRig(t)
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: msg.Query{
		Keys: []string{"cpu_load", "proc_cpu:mpeg_serve", "proc_cpu:mpeg_play", "proc_cpu:ghost", "bogus_stat"},
		Ref:  "q-dead",
	}})
	rep, ok := r.sent[len(r.sent)-1].Body.(msg.Report)
	if !ok {
		t.Fatalf("reply body = %T, want Report", r.sent[len(r.sent)-1].Body)
	}
	if rep.Ref != "q-dead" {
		t.Errorf("ref = %q", rep.Ref)
	}
	// The missing key is how the domain manager detects process death.
	if _, present := rep.Values["proc_cpu:mpeg_serve"]; present {
		t.Error("dead process reported a proc_cpu value")
	}
	if _, present := rep.Values["proc_cpu:ghost"]; present {
		t.Error("untracked executable reported a proc_cpu value")
	}
	if _, present := rep.Values["bogus_stat"]; present {
		t.Error("unknown statistic key reported a value")
	}
	if _, present := rep.Values["proc_cpu:mpeg_play"]; !present {
		t.Error("live process missing from report")
	}
	if _, present := rep.Values["cpu_load"]; !present {
		t.Error("cpu_load missing from report")
	}
}

func TestHostManagerDirectiveUnknownTargetAndAction(t *testing.T) {
	r := newRig(t, "")
	cases := []struct {
		name    string
		m       msg.Message
		wantErr string
	}{
		{"unknown target", directive("boost_cpu", "no-such-exe", 5), "no-such-exe"},
		{"empty target", directive("boost_cpu", "", 5), "no tracked process"},
		{"unknown action", directive("explode", "mpeg_play", 0), `unknown directive "explode"`},
		{"empty action", directive("", "mpeg_play", 0), "unknown directive"},
	}
	for _, tc := range cases {
		r.hm.HandleMessage(tc.m)
		ack := lastAck(t, r)
		if ack.OK || !strings.Contains(ack.Err, tc.wantErr) {
			t.Errorf("%s: ack = %+v, want error containing %q", tc.name, ack, tc.wantErr)
		}
	}
	if r.proc.Boost() != 0 {
		t.Errorf("malformed directives changed boost to %d", r.proc.Boost())
	}
}

func TestHostManagerPointerBodiesDispatch(t *testing.T) {
	// The TCP transport delivers pointer bodies; both envelope shapes must
	// reach the same handlers.
	r := newRig(t, "")
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: &msg.Directive{
		Action: "boost_cpu", Target: "mpeg_play", Amount: 3}})
	if r.proc.Boost() != 3 {
		t.Errorf("boost via *Directive = %d, want 3", r.proc.Boost())
	}
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: &msg.Query{
		Keys: []string{"cpu_load"}, Ref: "qp"}})
	rep, ok := r.sent[len(r.sent)-1].Body.(msg.Report)
	if !ok || rep.Ref != "qp" {
		t.Errorf("query via *Query reply = %+v", r.sent[len(r.sent)-1].Body)
	}
	v := violation(r.id, 15, 12, false)
	r.hm.HandleMessage(msg.Message{Body: &v})
	if r.hm.ViolationsSeen != 1 {
		t.Errorf("violation via *Violation not handled: seen=%d", r.hm.ViolationsSeen)
	}
}
