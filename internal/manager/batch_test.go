package manager

import (
	"bytes"
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/sim"
	"softqos/internal/telemetry"
)

func batchAlarm(host string, pid int, fps float64) msg.Alarm {
	return msg.Alarm{
		ID: msg.Identity{Host: host, PID: pid, Executable: "mpeg_play",
			Application: "VideoApplication"},
		Policy:   "NotifyQoSViolation",
		Readings: map[string]float64{"fps": fps},
	}
}

// TestCoalescerWindowOnInjectedClock drives the flush window on a
// simulation clock: alarms added inside one window merge per key and
// ship as a single batch exactly when the window timer fires — never
// earlier, never per-alarm.
func TestCoalescerWindowOnInjectedClock(t *testing.T) {
	s := sim.New(1)
	var at []time.Duration
	var batches []msg.AlarmBatch
	send := func(to string, m msg.Message) error {
		at = append(at, s.Now().Duration())
		batches = append(batches, m.Body.(msg.AlarmBatch))
		return nil
	}
	c := NewAlarmCoalescer("domain", "/d", "/region", send, 2*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	c.Summarize = func() map[string]float64 {
		return map[string]float64{"domain_saturation": 0.25}
	}

	// Three alarms for the same (subject, policy) inside the window, one
	// for a different host.
	s.Schedule(sim.Time(0), func() { _ = c.Add(batchAlarm("h1", 7, 12), 1) })
	s.Schedule(sim.Time(500*time.Millisecond), func() { _ = c.Add(batchAlarm("h1", 7, 9), 1) })
	s.Schedule(sim.Time(900*time.Millisecond), func() { _ = c.Add(batchAlarm("h2", 3, 11), 1) })
	s.Schedule(sim.Time(1800*time.Millisecond), func() { _ = c.Add(batchAlarm("h1", 7, 6), 1) })
	s.RunFor(10 * time.Second)

	if len(batches) != 1 {
		t.Fatalf("flushed %d batches, want exactly 1", len(batches))
	}
	if at[0] != 2*time.Second {
		t.Fatalf("flush at %v, want the 2s window boundary", at[0])
	}
	b := batches[0]
	if len(b.Alarms) != 2 {
		t.Fatalf("batch entries = %d, want 2 (h1 coalesced, h2 separate)", len(b.Alarms))
	}
	// Arrival order, latest readings win, counts accumulate.
	if b.Alarms[0].Count != 3 || b.Alarms[0].Alarm.Readings["fps"] != 6 {
		t.Errorf("h1 entry = count %d fps %v, want 3 / 6 (latest readings)",
			b.Alarms[0].Count, b.Alarms[0].Alarm.Readings["fps"])
	}
	if b.Alarms[1].Count != 1 || b.Alarms[1].Alarm.ID.Host != "h2" {
		t.Errorf("second entry = %+v, want h2 count 1", b.Alarms[1])
	}
	if b.Summary["domain_saturation"] != 0.25 {
		t.Errorf("summary = %v, want domain_saturation 0.25", b.Summary)
	}
	if c.Added != 4 || c.Coalesced != 2 || c.Batches != 1 || c.Pending() != 0 {
		t.Errorf("stats Added=%d Coalesced=%d Batches=%d Pending=%d, want 4/2/1/0",
			c.Added, c.Coalesced, c.Batches, c.Pending())
	}

	// A second window starts with the next alarm; the timer re-arms.
	s.After(0, func() { _ = c.Add(batchAlarm("h3", 1, 10), 1) })
	s.RunFor(10 * time.Second)
	if len(batches) != 2 {
		t.Fatalf("second window flushed %d batches total, want 2", len(batches))
	}
	if got := at[1] - 10*time.Second; got != 2*time.Second {
		t.Errorf("second flush %v after window start, want 2s", got)
	}
}

// TestCoalescerEscalationFlushesImmediately: an alarm at or above the
// escalation severity drains the pending batch at once — a severe
// fault is never delayed by the coalescing window.
func TestCoalescerEscalationFlushesImmediately(t *testing.T) {
	s := sim.New(1)
	var at []time.Duration
	var batches []msg.AlarmBatch
	send := func(to string, m msg.Message) error {
		at = append(at, s.Now().Duration())
		batches = append(batches, m.Body.(msg.AlarmBatch))
		return nil
	}
	reg := telemetry.NewRegistry(func() time.Duration { return s.Now().Duration() })
	c := NewAlarmCoalescer("domain", "/d", "/region", send, 5*time.Second, func(d time.Duration, fn func()) { s.After(d, fn) })
	c.SetTelemetry(reg)
	c.SetEscalation(2)

	s.Schedule(sim.Time(0), func() { _ = c.Add(batchAlarm("h1", 7, 12), 1) })
	s.Schedule(sim.Time(time.Second), func() { _ = c.Add(batchAlarm("h2", 3, 2), 2) }) // severe
	s.RunFor(20 * time.Second)

	if len(batches) != 1 {
		t.Fatalf("flushed %d batches, want 1 (escalation, then empty timer)", len(batches))
	}
	if at[0] != time.Second {
		t.Fatalf("escalation flush at %v, want 1s (the severe alarm's arrival)", at[0])
	}
	if len(batches[0].Alarms) != 2 {
		t.Errorf("escalation batch entries = %d, want 2 (pending + severe)", len(batches[0].Alarms))
	}
	if got := batches[0].Alarms[1].Severity; got != 2 {
		t.Errorf("severe entry severity = %d, want 2", got)
	}
	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, cv := range snap.Counters {
		counters[cv.Name] = cv.Value
	}
	if counters["batch.domain.escalation_flushes"] != 1 || counters["batch.domain.flushes"] != 1 {
		t.Errorf("counters = %v, want 1 escalation flush and 1 flush", counters)
	}
}

// TestCoalescerSeverityMergesToMax: merging a severe repeat into an
// existing entry keeps the maximum severity seen for that key.
func TestCoalescerSeverityMergesToMax(t *testing.T) {
	var fns []func()
	c := NewAlarmCoalescer("domain", "/d", "/region",
		func(string, msg.Message) error { return nil },
		time.Second, func(d time.Duration, fn func()) { fns = append(fns, fn) })
	_ = c.Add(batchAlarm("h1", 7, 12), 1)
	_ = c.Add(batchAlarm("h1", 7, 3), 2)
	_ = c.Add(batchAlarm("h1", 7, 10), 1)
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
	var got msg.AlarmBatch
	c.send = func(to string, m msg.Message) error {
		got = m.Body.(msg.AlarmBatch)
		return nil
	}
	_ = c.Flush()
	if got.Alarms[0].Severity != 2 || got.Alarms[0].Count != 3 {
		t.Errorf("merged entry severity=%d count=%d, want 2/3",
			got.Alarms[0].Severity, got.Alarms[0].Count)
	}
}

// TestCoalescerZeroWindowIsByteIdenticalPassthrough is the degenerate
// case the flat topology relies on: with no window, every Add forwards
// the alarm as a plain msg.Alarm whose wire bytes equal the unbatched
// protocol's — on both wire formats.
func TestCoalescerZeroWindowIsByteIdenticalPassthrough(t *testing.T) {
	var forwarded []msg.Message
	c := NewAlarmCoalescer("domain", "/d", "/region",
		func(to string, m msg.Message) error {
			if to != "/region" {
				t.Fatalf("passthrough sent to %q", to)
			}
			forwarded = append(forwarded, m)
			return nil
		},
		0, func(time.Duration, func()) {
			t.Fatal("zero-window coalescer armed a timer")
		})

	alarms := []msg.Alarm{
		batchAlarm("h1", 7, 12),
		batchAlarm("h1", 7, 9), // same key: must NOT merge in passthrough mode
		batchAlarm("h2", 3, 11),
	}
	for _, a := range alarms {
		if err := c.Add(a, 2); err != nil {
			t.Fatal(err)
		}
	}
	if len(forwarded) != len(alarms) {
		t.Fatalf("forwarded %d messages, want %d (one per alarm)", len(forwarded), len(alarms))
	}
	if c.Forwarded != 3 || c.Batches != 0 || c.Pending() != 0 {
		t.Fatalf("stats Forwarded=%d Batches=%d Pending=%d, want 3/0/0",
			c.Forwarded, c.Batches, c.Pending())
	}
	for i, a := range alarms {
		// The old per-alarm protocol: the manager sends the alarm itself.
		want := msg.Message{From: "/d", Body: a}
		for _, f := range []msg.WireFormat{msg.WireJSON, msg.WireBinary} {
			wb, err := msg.MarshalWire(f, "/region", want)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := msg.MarshalWire(f, "/region", forwarded[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb, gb) {
				t.Errorf("alarm %d format %v: passthrough bytes differ from unbatched protocol", i, f)
			}
		}
	}
}

// TestCoalescerEmptyFlushSendsNothing: flushing with nothing pending
// (and no summary hook) is a no-op on the wire.
func TestCoalescerEmptyFlushSendsNothing(t *testing.T) {
	sent := 0
	c := NewAlarmCoalescer("domain", "/d", "/region",
		func(string, msg.Message) error { sent++; return nil },
		time.Second, func(time.Duration, func()) {})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if sent != 0 {
		t.Fatalf("empty flush sent %d messages", sent)
	}
}
