package manager

import (
	"strconv"
	"time"

	"softqos/internal/msg"
	"softqos/internal/telemetry"
)

// domainState is everything the region keeps about one registered
// domain: its address, liveness deadline, and the aggregates from its
// alarm batches. The region holds state per DOMAIN, never per host —
// per-host memory at the region tier would defeat the hierarchy.
type domainState struct {
	name       string
	addr       string
	lastSeen   time.Duration
	saturation float64 // latest domain_saturation summary
	hosts      float64 // latest hosts summary
	alarms     uint64  // cumulative batched alarms from this domain
	probing    bool    // a localization query is already in flight
}

// regionProbe is one in-flight downward query to a single implicated
// domain.
type regionProbe struct {
	domain  string // domain manager address
	at      time.Duration
	retried bool
}

// rmMetrics holds the region manager's metric handles. The region only
// exists in hierarchical runs, so eager registration cannot perturb
// flat-topology snapshots.
type rmMetrics struct {
	batches    *telemetry.Counter
	alarms     *telemetry.Counter
	probes     *telemetry.Counter
	rebalances *telemetry.Counter
	evicted    *telemetry.Counter
	domains    *telemetry.Gauge

	// Lazy counters (policy-distribution runs only): registered on first
	// use so runs that never see a delta keep their metric namespace —
	// and therefore their determinism goldens — unchanged.
	reg          *telemetry.Registry
	policyRelays *telemetry.Counter
}

func (m *rmMetrics) countPolicyRelay(fanout int) {
	if m.policyRelays == nil {
		m.policyRelays = m.reg.Counter("region.policy_deltas_relayed")
	}
	m.policyRelays.Add(uint64(fanout))
}

// RegionManager is the third tier of the control plane: domain managers
// register with it (the same registration/heartbeat protocol hosts
// speak to a domain), their coalesced alarm batches aggregate into
// per-domain saturation state, and localization queries fan out DOWN
// only to the domains whose aggregates implicate them. Corrective
// rebalance directives travel back down the same edge.
type RegionManager struct {
	addr string
	send Send

	domains map[string]*domainState // keyed by domain manager address
	byName  map[string]string       // domain name -> address
	order   []string                // registration order of addresses
	probes  map[string]*regionProbe // ref -> in-flight probe
	nextRef int

	// SaturationThreshold gates downward probes: a batch whose
	// domain_saturation reaches it implicates the domain (default 0.02).
	SaturationThreshold float64
	// LoadThreshold gates rebalance directives: a probed domain whose
	// aggregated cpu_load_max reaches it gets a shed_load directive
	// (default 2.0, matching the domain rule set's CPU threshold).
	LoadThreshold float64
	// ShedAmount rides on rebalance directives (default 1.0).
	ShedAmount float64

	livenessClock   telemetry.Clock
	livenessTimeout time.Duration

	tracer  *telemetry.Tracer
	metrics *rmMetrics

	// summarySink, when set, receives inbound domain telemetry summaries
	// (SetSummarySink wires a terminal SummaryAggregator's Ingest here).
	summarySink func(msg.TelemetrySummary)

	// Statistics.
	Batches        uint64
	BatchedAlarms  uint64
	Probes         uint64
	ProbeRetries   uint64
	ProbeTimeouts  uint64
	Rebalances     uint64
	DomainsEvicted uint64
	// PolicyDeltasRelayed counts policy deltas forwarded down to
	// domain managers (fan-out included: one delta to three domains
	// counts three).
	PolicyDeltasRelayed uint64
}

// NewRegionManager creates a region manager bound to addr.
func NewRegionManager(addr string, send Send) *RegionManager {
	return &RegionManager{
		addr:                addr,
		send:                send,
		domains:             make(map[string]*domainState),
		byName:              make(map[string]string),
		probes:              make(map[string]*regionProbe),
		SaturationThreshold: 0.02,
		LoadThreshold:       2.0,
		ShedAmount:          1.0,
	}
}

// Addr returns the manager's management address.
func (rm *RegionManager) Addr() string { return rm.addr }

// Domains returns how many domain managers are registered.
func (rm *RegionManager) Domains() int { return len(rm.order) }

// SetTelemetry attaches the region manager to a metrics registry and
// tracer under the "region." prefix.
func (rm *RegionManager) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	rm.tracer = tracer
	if reg == nil {
		rm.metrics = nil
		return
	}
	rm.metrics = &rmMetrics{
		reg:        reg,
		batches:    reg.Counter("region.batches"),
		alarms:     reg.Counter("region.alarms_batched"),
		probes:     reg.Counter("region.probes"),
		rebalances: reg.Counter("region.rebalances"),
		evicted:    reg.Counter("region.domains_evicted"),
		domains:    reg.Gauge("region.domains"),
	}
}

// EnableLiveness arms domain eviction and probe timeouts, exactly as
// the lower tiers arm theirs.
func (rm *RegionManager) EnableLiveness(clock telemetry.Clock, timeout time.Duration) {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	rm.livenessClock = clock
	rm.livenessTimeout = timeout
}

func (rm *RegionManager) now() time.Duration {
	if rm.livenessClock == nil {
		return 0
	}
	return rm.livenessClock()
}

// HandleMessage processes one inbound management message.
func (rm *RegionManager) HandleMessage(m msg.Message) {
	switch body := m.Body.(type) {
	case *msg.Register:
		rm.handleRegister(*body, m.From)
	case msg.Register:
		rm.handleRegister(body, m.From)
	case *msg.Heartbeat:
		rm.handleHeartbeat(*body, m.From)
	case msg.Heartbeat:
		rm.handleHeartbeat(body, m.From)
	case *msg.AlarmBatch:
		rm.handleBatch(*body, m.From)
	case msg.AlarmBatch:
		rm.handleBatch(body, m.From)
	case *msg.Report:
		rm.handleReport(*body)
	case msg.Report:
		rm.handleReport(body)
	case *msg.Alarm:
		rm.handleAlarm(*body, m.From, m.Trace)
	case msg.Alarm:
		rm.handleAlarm(body, m.From, m.Trace)
	case *msg.TelemetrySummary:
		rm.handleSummary(*body)
	case msg.TelemetrySummary:
		rm.handleSummary(body)
	case *msg.PolicyDelta:
		rm.relayDelta(m)
	case msg.PolicyDelta:
		rm.relayDelta(m)
	case *msg.Ack, msg.Ack:
		// Directive acknowledgements are informational.
	}
}

// relayDelta forwards a repository policy delta to every registered
// domain manager, in registration order. The region adds no policy
// knowledge of its own — it is the distribution edge of the hierarchy,
// so the delta (and its trace context) passes through unchanged apart
// from the From address.
func (rm *RegionManager) relayDelta(m msg.Message) {
	for _, addr := range rm.order {
		_ = rm.send(addr, msg.Message{From: rm.addr, Trace: m.Trace, Body: m.Body})
	}
	rm.PolicyDeltasRelayed += uint64(len(rm.order))
	if rm.metrics != nil && len(rm.order) > 0 {
		rm.metrics.countPolicyRelay(len(rm.order))
	}
}

// SetSummarySink routes inbound domain telemetry summaries to fn —
// typically a terminal SummaryAggregator's Ingest, which merges them
// into the fleet-level aggregate the export surface serves.
func (rm *RegionManager) SetSummarySink(fn func(msg.TelemetrySummary)) {
	rm.summarySink = fn
}

func (rm *RegionManager) handleSummary(ts msg.TelemetrySummary) {
	if rm.summarySink != nil {
		rm.summarySink(ts)
	}
}

// handleRegister adopts a domain manager.
func (rm *RegionManager) handleRegister(b msg.Register, from string) {
	if from == "" {
		return
	}
	name := b.ID.Host
	if name == "" {
		name = from
	}
	if _, known := rm.domains[from]; !known {
		rm.order = append(rm.order, from)
	}
	rm.domains[from] = &domainState{name: name, addr: from, lastSeen: rm.now()}
	rm.byName[name] = from
	if rm.metrics != nil {
		rm.metrics.domains.Set(float64(len(rm.order)))
	}
	_ = rm.send(from, msg.Message{From: rm.addr,
		Body: msg.Ack{Ref: "register", OK: true}})
}

func (rm *RegionManager) handleHeartbeat(hb msg.Heartbeat, from string) {
	addr, ok := rm.byName[hb.ID.Host]
	if !ok {
		if from != "" {
			rm.handleRegister(msg.Register{ID: hb.ID}, from)
		}
		return
	}
	rm.domains[addr].lastSeen = rm.now()
}

// handleAlarm accepts an unbatched alarm from a domain running in the
// no-batching degenerate mode: it is folded into the same per-domain
// aggregates as a one-entry batch.
func (rm *RegionManager) handleAlarm(a msg.Alarm, from string, _ telemetry.TraceContext) {
	rm.handleBatch(msg.AlarmBatch{Tier: "domain",
		Alarms: []msg.BatchedAlarm{{Alarm: a, Count: 1, Severity: 1}}}, from)
}

// handleBatch ingests one domain's coalesced alarm window: per-domain
// aggregates are updated (saturation, cumulative alarms), and a domain
// whose saturation crosses the threshold is probed — only that domain,
// never the whole fleet.
func (rm *RegionManager) handleBatch(b msg.AlarmBatch, from string) {
	ds, ok := rm.domains[from]
	if !ok {
		return // unregistered sender
	}
	ds.lastSeen = rm.now()
	rm.Batches++
	var n uint64
	for _, e := range b.Alarms {
		n += uint64(e.Count)
	}
	rm.BatchedAlarms += n
	ds.alarms += n
	if s, ok := b.Summary["domain_saturation"]; ok {
		ds.saturation = s
	}
	if h, ok := b.Summary["hosts"]; ok {
		ds.hosts = h
	}
	if rm.metrics != nil {
		rm.metrics.batches.Inc()
		rm.metrics.alarms.Add(n)
	}
	if ds.saturation >= rm.SaturationThreshold && !ds.probing {
		rm.probe(ds)
	}
}

// probe fans a localization query down to one implicated domain.
func (rm *RegionManager) probe(ds *domainState) {
	rm.nextRef++
	ref := "r" + strconv.Itoa(rm.nextRef)
	ds.probing = true
	rm.probes[ref] = &regionProbe{domain: ds.addr, at: rm.now()}
	rm.Probes++
	if rm.metrics != nil {
		rm.metrics.probes.Inc()
	}
	if rm.tracer != nil {
		rm.tracer.EventCtxTier(telemetry.TraceContext{}, ds.name, "region",
			"regionmanager", telemetry.StageLocate,
			"probe "+ds.name+" (saturation over threshold)", TierRegion)
	}
	_ = rm.send(ds.addr, msg.Message{From: rm.addr, Body: msg.Query{
		From: rm.addr, Keys: []string{"cpu_load", "mem_usage"}, Ref: ref}})
}

// handleReport closes a probe with the domain's aggregated statistics:
// a domain whose worst host is over the load threshold gets a rebalance
// directive, which the domain routes to that host.
func (rm *RegionManager) handleReport(r msg.Report) {
	p, ok := rm.probes[r.Ref]
	if !ok {
		return
	}
	delete(rm.probes, r.Ref)
	ds := rm.domains[p.domain]
	if ds == nil {
		return
	}
	ds.lastSeen = rm.now()
	ds.probing = false
	if r.Values["cpu_load_max"] >= rm.LoadThreshold {
		rm.Rebalances++
		if rm.metrics != nil {
			rm.metrics.rebalances.Inc()
		}
		if rm.tracer != nil {
			rm.tracer.EventCtxTier(telemetry.TraceContext{}, ds.name, "region",
				"regionmanager", telemetry.StageDirective,
				"shed_load -> "+ds.name, TierRegion)
		}
		_ = rm.send(p.domain, msg.Message{From: rm.addr, Body: msg.Directive{
			From: rm.addr, Action: "shed_load", Amount: rm.ShedAmount}})
	}
}

// CheckLiveness sweeps probes (retry once toward the same domain, then
// abandon) and evicts silent domains, mirroring the lower tiers.
func (rm *RegionManager) CheckLiveness() (retried, abandoned int) {
	if rm.livenessClock == nil || rm.livenessTimeout <= 0 {
		return 0, 0
	}
	now := rm.livenessClock()
	for _, ref := range sortedKeys(rm.probes) {
		p := rm.probes[ref]
		if now-p.at <= rm.livenessTimeout {
			continue
		}
		if !p.retried {
			p.retried = true
			p.at = now
			rm.ProbeRetries++
			_ = rm.send(p.domain, msg.Message{From: rm.addr, Body: msg.Query{
				From: rm.addr, Keys: []string{"cpu_load", "mem_usage"}, Ref: ref}})
			retried++
			continue
		}
		rm.ProbeTimeouts++
		if ds := rm.domains[p.domain]; ds != nil {
			ds.probing = false
		}
		delete(rm.probes, ref)
		abandoned++
	}
	for _, addr := range sortedKeys(rm.domains) {
		ds := rm.domains[addr]
		if now-ds.lastSeen <= rm.livenessTimeout {
			continue
		}
		delete(rm.domains, addr)
		delete(rm.byName, ds.name)
		for i, a := range rm.order {
			if a == addr {
				rm.order = append(rm.order[:i], rm.order[i+1:]...)
				break
			}
		}
		rm.DomainsEvicted++
		if rm.metrics != nil {
			rm.metrics.evicted.Inc()
			rm.metrics.domains.Set(float64(len(rm.order)))
		}
	}
	return retried, abandoned
}

// Saturation returns the latest reported saturation of a domain by
// name; ok is false for an unknown domain.
func (rm *RegionManager) Saturation(name string) (float64, bool) {
	addr, ok := rm.byName[name]
	if !ok {
		return 0, false
	}
	return rm.domains[addr].saturation, true
}
