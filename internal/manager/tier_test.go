package manager

import (
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/telemetry"
)

// tierRig wires a DomainManager with a recording send and three
// registered host managers, for fan-out tests.
type tierRig struct {
	dm     *DomainManager
	clk    *manualClock
	sentTo []string
	sent   []msg.Message
}

func newTierRig(t *testing.T) *tierRig {
	t.Helper()
	r := &tierRig{clk: &manualClock{}}
	r.dm = NewDomainManager("/domain/QoSDomainManager", func(to string, m msg.Message) error {
		r.sentTo = append(r.sentTo, to)
		r.sent = append(r.sent, m)
		return nil
	})
	r.dm.SetTier(TierDomain)
	r.dm.EnableLiveness(r.clk.read, 2*time.Second)
	for _, h := range []string{"host-a", "host-b", "host-c"} {
		r.dm.HandleMessage(msg.Message{From: "/" + h + "/QoSHostManager",
			Body: msg.Register{ID: msg.Identity{Host: h}}})
	}
	// Drop the three registration acks from the recording.
	r.sentTo, r.sent = nil, nil
	return r
}

// queries returns the (to, Query) pairs recorded since the last reset.
func (r *tierRig) queries() (to []string, qs []msg.Query) {
	for i, m := range r.sent {
		if q, ok := m.Body.(msg.Query); ok {
			to = append(to, r.sentTo[i])
			qs = append(qs, q)
		}
	}
	return to, qs
}

func TestDomainManagerRegistersHosts(t *testing.T) {
	r := newTierRig(t)
	if r.dm.HostCount() != 3 {
		t.Fatalf("HostCount = %d, want 3", r.dm.HostCount())
	}
	want := []string{"/host-a/QoSHostManager", "/host-b/QoSHostManager", "/host-c/QoSHostManager"}
	for i, a := range r.dm.HostAddrs() {
		if a != want[i] {
			t.Errorf("HostAddrs[%d] = %q, want %q", i, a, want[i])
		}
	}
	// Re-registration rebinds the address without duplicating the host.
	r.dm.HandleMessage(msg.Message{From: "/host-b2/QoSHostManager",
		Body: msg.Register{ID: msg.Identity{Host: "host-b"}}})
	if r.dm.HostCount() != 3 {
		t.Fatalf("HostCount after re-register = %d, want 3", r.dm.HostCount())
	}
	if addrs := r.dm.HostAddrs(); addrs[1] != "/host-b2/QoSHostManager" {
		t.Errorf("re-register did not rebind: %v", addrs)
	}
}

// TestDomainManagerFanOutAggregates: a downward query is fanned out to
// every registered host (and only them), and the per-host replies fold
// into one max-aggregated Report to the requester — the parent tier
// never sees per-host traffic.
func TestDomainManagerFanOutAggregates(t *testing.T) {
	r := newTierRig(t)
	r.dm.HandleMessage(msg.Message{From: "/region/QoSRegionManager",
		Body: msg.Query{From: "/region/QoSRegionManager", Keys: []string{"cpu_load"}, Ref: "r1"}})

	to, qs := r.queries()
	if len(qs) != 3 {
		t.Fatalf("fan-out sent %d queries, want 3 (to %v)", len(qs), to)
	}
	iref := qs[0].Ref
	if iref == "r1" {
		t.Fatal("fan-out reused the requester's ref for sub-queries")
	}
	loads := map[string]float64{"host-a": 1.0, "host-b": 3.5, "host-c": 2.0}
	for host, load := range loads {
		r.dm.HandleMessage(msg.Message{From: "/" + host + "/QoSHostManager",
			Body: msg.Report{Host: host, Ref: iref,
				Values: map[string]float64{"cpu_load": load}}})
	}

	last := r.sent[len(r.sent)-1]
	if r.sentTo[len(r.sentTo)-1] != "/region/QoSRegionManager" {
		t.Fatalf("final report went to %q", r.sentTo[len(r.sentTo)-1])
	}
	rep, ok := last.Body.(msg.Report)
	if !ok || rep.Ref != "r1" {
		t.Fatalf("final reply = %#v, want Report with requester ref r1", last.Body)
	}
	if rep.Values["cpu_load_max"] != 3.5 {
		t.Errorf("cpu_load_max = %v, want 3.5", rep.Values["cpu_load_max"])
	}
	if rep.Values["hosts_asked"] != 3 || rep.Values["hosts_reporting"] != 3 {
		t.Errorf("asked/reporting = %v/%v, want 3/3",
			rep.Values["hosts_asked"], rep.Values["hosts_reporting"])
	}
	if r.dm.Fanouts != 1 || r.dm.FanoutQueries != 3 {
		t.Errorf("Fanouts=%d FanoutQueries=%d, want 1/3", r.dm.Fanouts, r.dm.FanoutQueries)
	}

	// A downward directive routes to the hottest host from the fan-out.
	r.dm.HandleMessage(msg.Message{From: "/region/QoSRegionManager",
		Body: msg.Directive{From: "/region/QoSRegionManager", Action: "shed_load", Amount: 1}})
	last = r.sent[len(r.sent)-1]
	if d, ok := last.Body.(msg.Directive); !ok || d.Action != "shed_load" {
		t.Fatalf("routed directive = %#v", last.Body)
	}
	if got := r.sentTo[len(r.sentTo)-1]; got != "/host-b/QoSHostManager" {
		t.Errorf("directive routed to %q, want the hottest host /host-b/QoSHostManager", got)
	}
}

// TestFanOutRetryScopedToNonResponders is the regression test for the
// episode-retry bug one tier up: when a fan-out times out, the retry
// must re-query ONLY the hosts that have not reported — the hosts that
// already answered are not asked again.
func TestFanOutRetryScopedToNonResponders(t *testing.T) {
	r := newTierRig(t)
	r.dm.HandleMessage(msg.Message{From: "/region/QoSRegionManager",
		Body: msg.Query{From: "/region/QoSRegionManager", Keys: []string{"cpu_load"}, Ref: "r1"}})
	_, qs := r.queries()
	iref := qs[0].Ref
	r.sentTo, r.sent = nil, nil

	// Only host-b answers inside the window.
	r.dm.HandleMessage(msg.Message{From: "/host-b/QoSHostManager",
		Body: msg.Report{Host: "host-b", Ref: iref,
			Values: map[string]float64{"cpu_load": 3.5}}})

	r.clk.now = 3 * time.Second
	re, ab := r.dm.CheckLiveness()
	if re != 1 || ab != 0 {
		t.Fatalf("first expiry: retried=%d abandoned=%d, want 1/0", re, ab)
	}
	to, qs := r.queries()
	if len(qs) != 2 {
		t.Fatalf("retry sent %d queries, want 2 (only non-responders): %v", len(qs), to)
	}
	for _, dst := range to {
		if dst == "/host-b/QoSHostManager" {
			t.Fatalf("retry re-queried host-b, which already reported (sent to %v)", to)
		}
	}
	for _, q := range qs {
		if q.Ref != iref {
			t.Errorf("retry changed fan-out ref: %q vs %q", q.Ref, iref)
		}
	}
	if r.dm.QueryRetries != 1 {
		t.Errorf("QueryRetries = %d, want 1", r.dm.QueryRetries)
	}

	// host-c answers on the retry; host-a stays dead. The second expiry
	// completes the fan-out with the partial aggregate.
	r.dm.HandleMessage(msg.Message{From: "/host-c/QoSHostManager",
		Body: msg.Report{Host: "host-c", Ref: iref,
			Values: map[string]float64{"cpu_load": 1.0}}})
	r.clk.now = 6 * time.Second
	re, ab = r.dm.CheckLiveness()
	if re != 0 || ab != 1 {
		t.Fatalf("second expiry: retried=%d abandoned=%d, want 0/1", re, ab)
	}
	var rep msg.Report
	found := false
	for i, m := range r.sent {
		if rp, ok := m.Body.(msg.Report); ok && r.sentTo[i] == "/region/QoSRegionManager" {
			rep, found = rp, true
		}
	}
	if !found {
		t.Fatal("no partial report reached the requester after abandonment")
	}
	if rep.Values["hosts_asked"] != 3 || rep.Values["hosts_reporting"] != 2 {
		t.Errorf("partial aggregate asked/reporting = %v/%v, want 3/2",
			rep.Values["hosts_asked"], rep.Values["hosts_reporting"])
	}
	if rep.Values["cpu_load_max"] != 3.5 {
		t.Errorf("partial cpu_load_max = %v, want 3.5", rep.Values["cpu_load_max"])
	}
}

// TestDomainManagerEvictsSilentHost: a registered host silent past the
// liveness timeout is evicted from the roster; heartbeats keep it, and
// a heartbeat from an evicted host re-adopts it. Each eviction fires
// the OnHostEvicted hook (the rollout controller's mid-bake-eviction
// rollback hangs off it).
func TestDomainManagerEvictsSilentHost(t *testing.T) {
	r := newTierRig(t)
	var hookEvicted []string
	r.dm.OnHostEvicted = func(h string) { hookEvicted = append(hookEvicted, h) }
	r.clk.now = time.Second
	r.dm.HandleMessage(msg.Message{From: "/host-a/QoSHostManager",
		Body: msg.Heartbeat{ID: msg.Identity{Host: "host-a"}, Seq: 1}})
	r.clk.now = 2500 * time.Millisecond
	r.dm.CheckLiveness()
	if r.dm.HostCount() != 1 || r.dm.HostsEvicted != 2 {
		t.Fatalf("HostCount=%d HostsEvicted=%d, want 1/2 (b and c silent)",
			r.dm.HostCount(), r.dm.HostsEvicted)
	}
	if len(hookEvicted) != 2 || hookEvicted[0] != "host-b" || hookEvicted[1] != "host-c" {
		t.Fatalf("OnHostEvicted saw %v, want [host-b host-c]", hookEvicted)
	}
	// The evicted host's next heartbeat re-adopts it.
	r.dm.HandleMessage(msg.Message{From: "/host-b/QoSHostManager",
		Body: msg.Heartbeat{ID: msg.Identity{Host: "host-b"}, Seq: 9}})
	if r.dm.HostCount() != 2 {
		t.Fatalf("HostCount after re-adoption = %d, want 2", r.dm.HostCount())
	}
}

// TestRegionManagerProbesSaturatedDomain: alarm batches aggregate into
// per-domain saturation; crossing the threshold triggers a localization
// probe to that domain only, and a hot probe reply triggers a shed_load
// rebalance directive down the same edge.
func TestRegionManagerProbesSaturatedDomain(t *testing.T) {
	clk := &manualClock{}
	var sentTo []string
	var sent []msg.Message
	rm := NewRegionManager("/region/QoSRegionManager", func(to string, m msg.Message) error {
		sentTo = append(sentTo, to)
		sent = append(sent, m)
		return nil
	})
	rm.EnableLiveness(clk.read, 10*time.Second)
	for _, d := range []string{"domain-0", "domain-1"} {
		rm.HandleMessage(msg.Message{From: "/" + d + "/QoSDomainManager",
			Body: msg.Register{ID: msg.Identity{Host: d}}})
	}
	if rm.Domains() != 2 {
		t.Fatalf("Domains = %d, want 2", rm.Domains())
	}
	sentTo, sent = nil, nil

	id := msg.Identity{Host: "host-7", PID: 3, Executable: "mpeg_serve", Application: "app-7"}
	// A calm batch from domain-1: aggregates recorded, no probe.
	rm.HandleMessage(msg.Message{From: "/domain-1/QoSDomainManager",
		Body: msg.AlarmBatch{Tier: "domain",
			Alarms:  []msg.BatchedAlarm{{Alarm: msg.Alarm{ID: id, Policy: "p"}, Count: 2, Severity: 1}},
			Summary: map[string]float64{"domain_saturation": 0.001, "hosts": 100}}})
	if len(sent) != 0 {
		t.Fatalf("calm batch triggered %d sends", len(sent))
	}
	// A saturated batch from domain-0: probe exactly that domain.
	rm.HandleMessage(msg.Message{From: "/domain-0/QoSDomainManager",
		Body: msg.AlarmBatch{Tier: "domain",
			Alarms:  []msg.BatchedAlarm{{Alarm: msg.Alarm{ID: id, Policy: "p"}, Count: 5, Severity: 1}},
			Summary: map[string]float64{"domain_saturation": 0.05, "hosts": 100}}})
	if len(sent) != 1 || sentTo[0] != "/domain-0/QoSDomainManager" {
		t.Fatalf("probe sends = %v, want exactly one to domain-0", sentTo)
	}
	q, ok := sent[0].Body.(msg.Query)
	if !ok {
		t.Fatalf("probe body = %#v, want Query", sent[0].Body)
	}
	if s, _ := rm.Saturation("domain-0"); s != 0.05 {
		t.Errorf("Saturation(domain-0) = %v, want 0.05", s)
	}
	if rm.Batches != 2 || rm.BatchedAlarms != 7 || rm.Probes != 1 {
		t.Errorf("Batches=%d BatchedAlarms=%d Probes=%d, want 2/7/1",
			rm.Batches, rm.BatchedAlarms, rm.Probes)
	}

	// While the probe is in flight, further saturated batches do not
	// stack probes on the same domain.
	rm.HandleMessage(msg.Message{From: "/domain-0/QoSDomainManager",
		Body: msg.AlarmBatch{Tier: "domain",
			Summary: map[string]float64{"domain_saturation": 0.08}}})
	if rm.Probes != 1 {
		t.Fatalf("Probes = %d after in-flight batch, want still 1", rm.Probes)
	}

	// The probe reply says the domain's worst host is hot: rebalance.
	rm.HandleMessage(msg.Message{From: "/domain-0/QoSDomainManager",
		Body: msg.Report{Host: "/domain-0/QoSDomainManager", Ref: q.Ref,
			Values: map[string]float64{"cpu_load_max": 4.2, "hosts_asked": 100, "hosts_reporting": 100}}})
	last := sent[len(sent)-1]
	d, ok := last.Body.(msg.Directive)
	if !ok || d.Action != "shed_load" {
		t.Fatalf("rebalance body = %#v, want shed_load Directive", last.Body)
	}
	if sentTo[len(sentTo)-1] != "/domain-0/QoSDomainManager" {
		t.Errorf("rebalance sent to %q", sentTo[len(sentTo)-1])
	}
	if rm.Rebalances != 1 {
		t.Errorf("Rebalances = %d, want 1", rm.Rebalances)
	}
}

// TestRegionManagerProbeRetryAndDomainEviction: an unanswered probe is
// retried once toward the same domain and then abandoned, and a domain
// silent past the liveness timeout is evicted from the region roster.
func TestRegionManagerProbeRetryAndDomainEviction(t *testing.T) {
	clk := &manualClock{}
	var sentTo []string
	rm := NewRegionManager("/region/QoSRegionManager", func(to string, m msg.Message) error {
		sentTo = append(sentTo, to)
		return nil
	})
	rm.EnableLiveness(clk.read, 2*time.Second)
	rm.HandleMessage(msg.Message{From: "/domain-0/QoSDomainManager",
		Body: msg.Register{ID: msg.Identity{Host: "domain-0"}}})
	rm.HandleMessage(msg.Message{From: "/domain-0/QoSDomainManager",
		Body: msg.AlarmBatch{Tier: "domain",
			Summary: map[string]float64{"domain_saturation": 0.5}}})
	if rm.Probes != 1 {
		t.Fatalf("Probes = %d, want 1", rm.Probes)
	}
	n := len(sentTo)

	clk.now = 3 * time.Second
	re, ab := rm.CheckLiveness()
	if re != 1 || ab != 0 || rm.ProbeRetries != 1 || len(sentTo) != n+1 {
		t.Fatalf("first expiry: retried=%d abandoned=%d ProbeRetries=%d sends=%d",
			re, ab, rm.ProbeRetries, len(sentTo)-n)
	}
	// The probe timestamp was refreshed by the retry, but the domain has
	// now also been silent past the timeout: the second sweep abandons
	// the probe and evicts the domain.
	clk.now = 6 * time.Second
	re, ab = rm.CheckLiveness()
	if re != 0 || ab != 1 || rm.ProbeTimeouts != 1 {
		t.Fatalf("second expiry: retried=%d abandoned=%d ProbeTimeouts=%d", re, ab, rm.ProbeTimeouts)
	}
	if rm.Domains() != 0 || rm.DomainsEvicted != 1 {
		t.Fatalf("Domains=%d DomainsEvicted=%d, want 0/1", rm.Domains(), rm.DomainsEvicted)
	}
}

// TestDomainManagerUplinkBatchesAlarms: with an uplink coalescer
// attached, every alarm the domain manager handles is also merged into
// the upward batch — the localization episode itself is unaffected.
func TestDomainManagerUplinkBatchesAlarms(t *testing.T) {
	var timers []func()
	after := func(d time.Duration, fn func()) { timers = append(timers, fn) }
	var upTo []string
	var up []msg.Message
	upSend := func(to string, m msg.Message) error {
		upTo = append(upTo, to)
		up = append(up, m)
		return nil
	}
	dm := NewDomainManager("/domain/QoSDomainManager", func(string, msg.Message) error { return nil })
	dm.RegisterAppServer("VideoApplication", "/server-host/QoSHostManager", "mpeg_serve")
	co := NewAlarmCoalescer("domain", "/domain/QoSDomainManager",
		"/region/QoSRegionManager", upSend, 2*time.Second, after)
	dm.SetUplink(co)
	dm.SeverityFor = func(a msg.Alarm) int {
		if a.Readings["fps"] < 5 {
			return 2
		}
		return 1
	}

	id := msg.Identity{Host: "client-host", PID: 7, Executable: "mpeg_play",
		Application: "VideoApplication"}
	for i := 0; i < 3; i++ {
		dm.HandleMessage(msg.Message{From: "/client-host/QoSHostManager",
			Body: msg.Alarm{ID: id, Policy: "NotifyQoSViolation",
				Readings: map[string]float64{"fps": 12}}})
	}
	if co.Added != 3 || co.Pending() != 1 {
		t.Fatalf("Added=%d Pending=%d, want 3 coalesced into 1", co.Added, co.Pending())
	}
	if len(up) != 0 {
		t.Fatalf("batch shipped before the window expired: %d sends", len(up))
	}
	if len(timers) != 1 {
		t.Fatalf("armed %d flush timers, want 1", len(timers))
	}
	timers[0]()
	if len(up) != 1 || upTo[0] != "/region/QoSRegionManager" {
		t.Fatalf("flush sends = %v, want one to the region", upTo)
	}
	b := up[0].Body.(msg.AlarmBatch)
	if len(b.Alarms) != 1 || b.Alarms[0].Count != 3 {
		t.Fatalf("batch = %+v, want one entry with Count 3", b)
	}
	if dm.Alarms != 3 {
		t.Errorf("Alarms = %d, want 3 (uplink must not eat the episode path)", dm.Alarms)
	}
}

// TestTierSpansCarryDepth: spans emitted by a tiered manager carry its
// depth; flat-topology spans stay at zero.
func TestTierSpansCarryDepth(t *testing.T) {
	clk := &manualClock{}
	tracer := telemetry.NewTracer(clk.read)
	tc := tracer.Begin("client-host:7", "NotifyQoSViolation", "coordinator", "fps out of band")
	tracer.EventCtxTier(tc, "client-host:7", "NotifyQoSViolation", "domainmanager",
		telemetry.StageLocate, "asking hosts", TierDomain)
	tracer.EventCtx(tc, "client-host:7", "NotifyQoSViolation", "coordinator",
		telemetry.StageNotify, "flat event")
	spans := tracer.Traces()[0].Spans
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[1].Tier != TierDomain {
		t.Errorf("tiered span Tier = %d, want %d", spans[1].Tier, TierDomain)
	}
	if spans[0].Tier != 0 || spans[2].Tier != 0 {
		t.Errorf("flat spans carry tier: %d/%d, want 0/0", spans[0].Tier, spans[2].Tier)
	}
}

// TestPolicyDeltaRelay pins the distribution edge of live policy
// rollout: a delta reaching the region fans out to every registered
// domain, a delta reaching a domain fans out to its configured policy
// agents, and the trace context survives both hops.
func TestPolicyDeltaRelay(t *testing.T) {
	var regionTo []string
	var regionSent []msg.Message
	rm := NewRegionManager("/region/QoSRegionManager", func(to string, m msg.Message) error {
		regionTo = append(regionTo, to)
		regionSent = append(regionSent, m)
		return nil
	})
	reg := telemetry.NewRegistry(func() time.Duration { return 0 })
	rm.SetTelemetry(reg, nil)
	for _, d := range []string{"d-1", "d-2"} {
		rm.HandleMessage(msg.Message{From: "/" + d + "/QoSDomainManager",
			Body: msg.Register{ID: msg.Identity{Host: d}}})
	}
	regionTo, regionSent = nil, nil

	trace := telemetry.TraceContext{TraceID: "rollout#1", Span: 2}
	delta := msg.PolicyDelta{Generation: 3, Prev: 2, Executable: "mpeg_play",
		Scope: "fleet", Reason: "promoted"}
	rm.HandleMessage(msg.Message{From: "/repo/hub", Trace: trace, Body: &delta})
	if len(regionSent) != 2 ||
		regionTo[0] != "/d-1/QoSDomainManager" || regionTo[1] != "/d-2/QoSDomainManager" {
		t.Fatalf("region relayed to %v", regionTo)
	}
	for i, m := range regionSent {
		if m.Trace != trace {
			t.Errorf("relay %d lost trace context: %+v", i, m.Trace)
		}
		if d, ok := m.Body.(*msg.PolicyDelta); !ok || d.Generation != 3 {
			t.Errorf("relay %d body = %+v", i, m.Body)
		}
		if m.From != "/region/QoSRegionManager" {
			t.Errorf("relay %d from = %q", i, m.From)
		}
	}
	if rm.PolicyDeltasRelayed != 2 {
		t.Errorf("PolicyDeltasRelayed = %d", rm.PolicyDeltasRelayed)
	}
	if n := reg.Counter("region.policy_deltas_relayed").Value(); n != 2 {
		t.Errorf("region.policy_deltas_relayed = %d", n)
	}

	// Domain hop: only configured policy agents receive the delta.
	r := newTierRig(t)
	r.dm.HandleMessage(msg.Message{From: "/region", Trace: trace, Body: delta})
	if len(r.sent) != 0 {
		t.Fatalf("domain with no policy agents relayed %d messages", len(r.sent))
	}
	r.dm.SetPolicyAgents("/mgmt/PolicyAgent", "/mgmt/PolicyAgent2")
	r.dm.HandleMessage(msg.Message{From: "/region", Trace: trace, Body: delta})
	if len(r.sent) != 2 || r.sentTo[0] != "/mgmt/PolicyAgent" || r.sentTo[1] != "/mgmt/PolicyAgent2" {
		t.Fatalf("domain relayed to %v", r.sentTo)
	}
	if r.sent[0].Trace != trace {
		t.Errorf("domain relay lost trace context: %+v", r.sent[0].Trace)
	}
	if r.dm.PolicyDeltasRelayed != 2 {
		t.Errorf("domain PolicyDeltasRelayed = %d", r.dm.PolicyDeltasRelayed)
	}
}
