package manager

import (
	"sort"
	"time"

	"softqos/internal/msg"
	"softqos/internal/telemetry"
	"softqos/internal/telemetry/eventlog"
)

// AlarmCoalescer batches a tier's upward alarm traffic: instead of
// forwarding every alarm to the parent tier point-to-point, alarms are
// merged per (subject, policy, suspect) key over a flush window on the
// injected clock and shipped as one msg.AlarmBatch, together with
// summary aggregates (e.g. "domain_saturation") the parent tier keeps
// instead of per-host state.
//
// Two escape hatches keep the semantics honest:
//
//   - a zero window disables batching entirely — Add forwards each alarm
//     as a plain msg.Alarm, byte-identical to the unbatched protocol (the
//     flat topology's degenerate case);
//   - an alarm at or above the escalation severity flushes the buffer
//     immediately, so a window never delays a severe fault by more than
//     the transport latency.
//
// The coalescer is driven by the single-threaded simulation loop (or a
// serialized live dispatcher) like the managers that own it; it is not
// internally locked.
type AlarmCoalescer struct {
	tier   string // emitting tier name stamped on batches ("host", "domain")
	addr   string // owning manager's address (batch envelope From)
	parent string // destination one tier up
	send   Send

	window   time.Duration
	after    func(time.Duration, func()) // injected timer (sim After or time.AfterFunc)
	escalate int                         // severity >= escalate flushes immediately; 0 disables

	// Summarize, when set, is invoked at flush time to attach aggregate
	// facts to the outgoing batch (the per-tier summary that replaces
	// per-host floods at the parent).
	Summarize func() map[string]float64

	order   []string // arrival order of keys, for deterministic batch layout
	entries map[string]*msg.BatchedAlarm
	armed   bool

	// Statistics.
	Batches   uint64 // batches flushed
	Added     uint64 // alarms accepted into the coalescer
	Coalesced uint64 // alarms merged into an existing entry
	Forwarded uint64 // per-alarm passthroughs (zero-window mode)

	// Lazy counters: registered on first use so a registry attached to a
	// run that never batches keeps its pre-hierarchy metric name set.
	reg      *telemetry.Registry
	flushes  *telemetry.Counter
	batched  *telemetry.Counter
	escFlush *telemetry.Counter

	// evlog, when set, records flush decisions (component "batch").
	evlog *eventlog.Logger
}

// NewAlarmCoalescer creates a coalescer that batches alarms from tier
// toward parent over the given window. after schedules the flush timer
// on the owning runtime's clock; a zero window makes Add a per-alarm
// passthrough and never schedules anything.
func NewAlarmCoalescer(tier, addr, parent string, send Send,
	window time.Duration, after func(time.Duration, func())) *AlarmCoalescer {
	return &AlarmCoalescer{
		tier:    tier,
		addr:    addr,
		parent:  parent,
		send:    send,
		window:  window,
		after:   after,
		entries: make(map[string]*msg.BatchedAlarm),
	}
}

// SetTelemetry attaches the coalescer to a metrics registry. All of its
// counters resolve lazily on first flush, so attaching never changes
// the registered name set of runs that do not batch.
func (c *AlarmCoalescer) SetTelemetry(reg *telemetry.Registry) { c.reg = reg }

// SetEscalation arms flush-on-severity: an Add with severity >= sev
// flushes the pending batch immediately. Zero disables escalation.
func (c *AlarmCoalescer) SetEscalation(sev int) { c.escalate = sev }

// SetEventLog attaches the structured event log flush decisions are
// recorded on (component "batch"). Nil detaches.
func (c *AlarmCoalescer) SetEventLog(lg *eventlog.Logger) { c.evlog = lg }

// Pending returns how many coalesced entries await the next flush.
func (c *AlarmCoalescer) Pending() int { return len(c.entries) }

func alarmKey(a msg.Alarm) string {
	return a.ID.Address() + "|" + a.Policy + "|" + a.Suspect
}

// Add accepts one alarm with its severity. With a zero window the alarm
// is forwarded to the parent unchanged (the unbatched wire protocol);
// otherwise it is merged into the current window's batch, which flushes
// when the window timer fires — or immediately, when severity reaches
// the escalation threshold.
func (c *AlarmCoalescer) Add(a msg.Alarm, severity int) error {
	return c.AddCtx(a, severity, telemetry.TraceContext{})
}

// AddCtx is Add with a trace context. Zero-window passthroughs carry it
// on the forwarded alarm so causal traces survive the degenerate case;
// batched alarms drop it (a batch aggregates many causes).
func (c *AlarmCoalescer) AddCtx(a msg.Alarm, severity int, tc telemetry.TraceContext) error {
	c.Added++
	if c.window <= 0 {
		c.Forwarded++
		return c.send(c.parent, msg.Message{From: c.addr, Trace: tc, Body: a})
	}
	key := alarmKey(a)
	if e, ok := c.entries[key]; ok {
		c.Coalesced++
		e.Alarm = a // latest readings win
		e.Count++
		if severity > e.Severity {
			e.Severity = severity
		}
	} else {
		c.entries[key] = &msg.BatchedAlarm{Alarm: a, Count: 1, Severity: severity}
		c.order = append(c.order, key)
	}
	if c.escalate > 0 && severity >= c.escalate {
		if c.reg != nil {
			if c.escFlush == nil {
				c.escFlush = c.reg.Counter("batch." + c.tier + ".escalation_flushes")
			}
			c.escFlush.Inc()
		}
		c.evlog.EventCtx(tc, eventlog.Warn, "batch", "escalation_flush",
			eventlog.Str("tier", c.tier), eventlog.Str("subject", a.ID.Address()),
			eventlog.Int("severity", severity), eventlog.Int("pending", len(c.entries)))
		return c.Flush()
	}
	if !c.armed {
		c.armed = true
		c.after(c.window, c.timerFlush)
	}
	return nil
}

// timerFlush is the window timer's callback. An escalation may already
// have drained the buffer; the timer then just disarms.
func (c *AlarmCoalescer) timerFlush() {
	c.armed = false
	if len(c.entries) > 0 {
		_ = c.Flush()
	}
}

// Flush ships the pending entries (in arrival order) and the current
// summary as one AlarmBatch. A flush with nothing pending and no
// summary sends nothing.
func (c *AlarmCoalescer) Flush() error {
	if len(c.entries) == 0 && c.Summarize == nil {
		return nil
	}
	b := msg.AlarmBatch{Tier: c.tier}
	if len(c.entries) > 0 {
		b.Alarms = make([]msg.BatchedAlarm, 0, len(c.entries))
		for _, key := range c.order {
			b.Alarms = append(b.Alarms, *c.entries[key])
		}
		c.order = c.order[:0]
		c.entries = make(map[string]*msg.BatchedAlarm)
	}
	if c.Summarize != nil {
		b.Summary = c.Summarize()
	}
	if len(b.Alarms) == 0 && len(b.Summary) == 0 {
		return nil
	}
	c.Batches++
	if c.reg != nil {
		if c.flushes == nil {
			c.flushes = c.reg.Counter("batch." + c.tier + ".flushes")
			c.batched = c.reg.Counter("batch." + c.tier + ".alarms")
		}
		c.flushes.Inc()
		for _, e := range b.Alarms {
			c.batched.Add(uint64(e.Count))
		}
	}
	c.evlog.Event(eventlog.Debug, "batch", "flush",
		eventlog.Str("tier", c.tier), eventlog.Int("alarms", len(b.Alarms)),
		eventlog.Int("summary", len(b.Summary)))
	return c.send(c.parent, msg.Message{From: c.addr, Body: b})
}

// sortedKeys is a small shared helper for deterministic map sweeps in
// the tier managers.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
