package manager

import (
	"strings"
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/sched"
	"softqos/internal/sim"
)

// rig wires a host manager over a loopback send that records messages.
type rig struct {
	sim  *sim.Simulator
	host *sched.Host
	hm   *HostManager
	sent []msg.Message
	to   []string
	proc *sched.Proc
	id   msg.Identity
}

func newRig(t *testing.T, domainAddr string) *rig {
	t.Helper()
	r := &rig{sim: sim.New(1)}
	r.host = sched.NewHost(r.sim, "client-host", sched.WithMemory(10000))
	r.hm = NewHostManager("/client-host/QoSHostManager", r.host, func(to string, m msg.Message) error {
		r.to = append(r.to, to)
		r.sent = append(r.sent, m)
		return nil
	}, domainAddr)
	// A CPU-bound process standing in for the video client.
	r.proc = r.host.Spawn("mpeg_play", func(p *sched.Proc) {
		var loop func()
		loop = func() { p.Use(10*time.Millisecond, func() { loop() }) }
		loop()
	}, sched.WithWorkingSet(500))
	r.id = msg.Identity{Host: "client-host", PID: r.proc.PID(),
		Executable: "mpeg_play", Application: "VideoApplication"}
	r.hm.Track(r.proc, r.id)
	return r
}

func violation(id msg.Identity, fps, buf float64, overshoot bool) msg.Violation {
	return msg.Violation{
		ID:     id,
		Policy: "NotifyQoSViolation",
		Readings: map[string]float64{
			"frame_rate":  fps,
			"jitter_rate": 0.4,
			"buffer_size": buf,
		},
		Overshoot: overshoot,
	}
}

func TestHostManagerBoostsOnLocalStarvation(t *testing.T) {
	r := newRig(t, "")
	before := r.proc.Boost()
	// Long buffer (12 >= threshold 8): local starvation; fps 15 → boost
	// max(2, min(15, 25-15)) = 10.
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 15, 12, false)})
	if got := r.proc.Boost() - before; got != 10 {
		t.Errorf("boost delta = %d, want 10", got)
	}
	if r.hm.ViolationsSeen != 1 || r.hm.CPU().Adjustments != 1 {
		t.Errorf("stats: violations=%d adjustments=%d", r.hm.ViolationsSeen, r.hm.CPU().Adjustments)
	}
	// Episode facts are cleared; only the deffacts threshold remains.
	if n := r.hm.Engine().FactCount(); n != 1 {
		t.Errorf("facts after episode = %d, want 1", n)
	}
}

func TestHostManagerBoostProportionalToGap(t *testing.T) {
	r := newRig(t, "")
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 24, 12, false)})
	small := r.proc.Boost() // 25-24=1 → clamped to min 2
	if small != 2 {
		t.Errorf("small-gap boost = %d, want 2", small)
	}
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 2, 12, false)})
	// 25-2=23 → clamped to max 15 per step.
	if got := r.proc.Boost() - small; got != 15 {
		t.Errorf("large-gap boost step = %d, want 15", got)
	}
}

func TestHostManagerEscalatesShortBuffer(t *testing.T) {
	r := newRig(t, "/domain/QoSDomainManager")
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 15, 1, false)})
	if r.proc.Boost() != 0 {
		t.Errorf("short-buffer violation boosted CPU by %d", r.proc.Boost())
	}
	if r.hm.Escalations != 1 || len(r.sent) != 1 {
		t.Fatalf("escalations=%d sent=%d", r.hm.Escalations, len(r.sent))
	}
	al, ok := r.sent[0].Body.(msg.Alarm)
	if !ok || r.to[0] != "/domain/QoSDomainManager" {
		t.Fatalf("escalation = %T to %q", r.sent[0].Body, r.to[0])
	}
	if al.ID.PID != r.id.PID || al.Readings["buffer_size"] != 1 {
		t.Errorf("alarm = %+v", al)
	}
}

func TestHostManagerReclaimOnOvershoot(t *testing.T) {
	r := newRig(t, "")
	r.proc.SetBoost(10)
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 30, 0, true)})
	if r.proc.Boost() != 9 {
		t.Errorf("boost after overshoot = %d, want 9", r.proc.Boost())
	}
	if r.hm.OvershootsSeen != 1 {
		t.Errorf("overshoots = %d", r.hm.OvershootsSeen)
	}
}

func TestHostManagerDefaultBoostWithoutBufferReading(t *testing.T) {
	r := newRig(t, "")
	v := msg.Violation{ID: r.id, Policy: "P", Readings: map[string]float64{"frame_rate": 15}}
	r.hm.HandleMessage(msg.Message{Body: v})
	if r.proc.Boost() != 5 {
		t.Errorf("default boost = %d, want 5", r.proc.Boost())
	}
}

func TestHostManagerIgnoresUntrackedProcess(t *testing.T) {
	r := newRig(t, "")
	ghost := r.id
	ghost.PID = 9999
	r.hm.HandleMessage(msg.Message{Body: violation(ghost, 10, 12, false)})
	if r.hm.RuleErrors != 1 || r.proc.Boost() != 0 {
		t.Errorf("untracked violation: errors=%d boost=%d", r.hm.RuleErrors, r.proc.Boost())
	}
}

func TestHostManagerQueryReport(t *testing.T) {
	r := newRig(t, "")
	r.sim.RunFor(90 * time.Second) // let load average build and CPU accrue
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: msg.Query{
		Keys: []string{"cpu_load", "mem_usage", "proc_cpu:mpeg_play", "proc_boost:mpeg_play", "run_queue"},
		Ref:  "q1",
	}})
	if len(r.sent) != 1 || r.to[0] != "/domain" {
		t.Fatalf("query produced %d messages", len(r.sent))
	}
	rep := r.sent[0].Body.(msg.Report)
	if rep.Ref != "q1" || rep.Host != "client-host" {
		t.Errorf("report header = %+v", rep)
	}
	if rep.Values["cpu_load"] < 0.5 {
		t.Errorf("cpu_load = %v, want ~1 with a spinner", rep.Values["cpu_load"])
	}
	if rep.Values["proc_cpu:mpeg_play"] < 80 {
		t.Errorf("proc_cpu = %v, want ~90s", rep.Values["proc_cpu:mpeg_play"])
	}
	if mu := rep.Values["mem_usage"]; mu < 0.04 || mu > 0.06 {
		t.Errorf("mem_usage = %v, want 0.05 (500 of 10000 pages)", mu)
	}
}

func TestHostManagerDirectives(t *testing.T) {
	r := newRig(t, "")
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: msg.Directive{
		Action: "boost_cpu", Target: "mpeg_play", Amount: 7}})
	if r.proc.Boost() != 7 {
		t.Errorf("boost after directive = %d", r.proc.Boost())
	}
	ack := r.sent[len(r.sent)-1].Body.(msg.Ack)
	if !ack.OK {
		t.Errorf("ack = %+v", ack)
	}
	res0 := r.proc.Resident()
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: msg.Directive{
		Action: "adjust_memory", Target: "mpeg_play", Amount: 100}})
	if r.proc.Resident() != res0+100 {
		t.Errorf("resident = %d, want %d", r.proc.Resident(), res0+100)
	}
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: msg.Directive{
		Action: "boost_cpu", Target: "ghost", Amount: 1}})
	ack = r.sent[len(r.sent)-1].Body.(msg.Ack)
	if ack.OK || !strings.Contains(ack.Err, "ghost") {
		t.Errorf("ack for unknown target = %+v", ack)
	}
	r.hm.HandleMessage(msg.Message{From: "/domain", Body: msg.Directive{
		Action: "explode", Target: "mpeg_play"}})
	ack = r.sent[len(r.sent)-1].Body.(msg.Ack)
	if ack.OK {
		t.Error("unknown action acked OK")
	}
}

func TestHostManagerRuleSwapAtRuntime(t *testing.T) {
	r := newRig(t, "")
	// Replace the rule set: all violations now get real-time class.
	err := r.hm.LoadRules(`
(defrule always-rt
  (violation ?p ?policy)
  =>
  (call grant-rt ?p 20))
`)
	if err != nil {
		t.Fatal(err)
	}
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 15, 12, false)})
	if r.proc.Class() != sched.RT || r.proc.Priority() != 20 {
		t.Errorf("after rule swap: class=%v prio=%d", r.proc.Class(), r.proc.Priority())
	}
}

func TestCPUManagerClamping(t *testing.T) {
	s := sim.New(1)
	h := sched.NewHost(s, "h")
	p := h.Spawn("x", func(p *sched.Proc) { p.Sleep(time.Hour, func() { p.Exit() }) })
	cm := NewCPUManager(h)
	if got := cm.Boost(p, 100); got != maxBoost {
		t.Errorf("boost clamped to %d, want %d", got, maxBoost)
	}
	if got := cm.Boost(p, -200); got != minBoost {
		t.Errorf("boost clamped to %d, want %d", got, minBoost)
	}
	cm.GrantRealtime(p, 15)
	if p.Class() != sched.RT {
		t.Error("GrantRealtime did not move class")
	}
	cm.RevokeRealtime(p)
	if p.Class() != sched.TS {
		t.Error("RevokeRealtime did not restore TS")
	}
}

func TestMemoryManagerEnsure(t *testing.T) {
	s := sim.New(1)
	h := sched.NewHost(s, "h", sched.WithMemory(1000))
	p := h.Spawn("x", func(p *sched.Proc) { p.Sleep(time.Hour, func() { p.Exit() }) },
		sched.WithWorkingSet(100))
	mm := NewMemoryManager(h)
	if got := mm.Ensure(p, 50); got != 100 {
		t.Errorf("Ensure below current shrank to %d", got)
	}
	if got := mm.Ensure(p, 300); got != 300 {
		t.Errorf("Ensure = %d, want 300", got)
	}
	if got := mm.Adjust(p, -100); got != 200 {
		t.Errorf("Adjust = %d, want 200", got)
	}
}

// domainRig wires a domain manager with two host managers (client and
// server) over a loopback router.
type domainRig struct {
	sim        *sim.Simulator
	clientHost *sched.Host
	serverHost *sched.Host
	clientHM   *HostManager
	serverHM   *HostManager
	dm         *DomainManager
	serverProc *sched.Proc
	clientID   msg.Identity
}

func newDomainRig(t *testing.T) *domainRig {
	t.Helper()
	r := &domainRig{sim: sim.New(1)}
	// Synchronous loopback router between the three managers.
	route := func(to string, m msg.Message) error {
		switch to {
		case "/client-host/QoSHostManager":
			r.clientHM.HandleMessage(m)
		case "/server-host/QoSHostManager":
			r.serverHM.HandleMessage(m)
		case "/domain/QoSDomainManager":
			r.dm.HandleMessage(m)
		}
		return nil
	}
	r.clientHost = sched.NewHost(r.sim, "client-host")
	r.serverHost = sched.NewHost(r.sim, "server-host", sched.WithMemory(10000))
	r.clientHM = NewHostManager("/client-host/QoSHostManager", r.clientHost, route, "/domain/QoSDomainManager")
	r.serverHM = NewHostManager("/server-host/QoSHostManager", r.serverHost, route, "")
	r.dm = NewDomainManager("/domain/QoSDomainManager", route)
	r.dm.RegisterAppServer("VideoApplication", "/server-host/QoSHostManager", "mpeg_serve")

	r.serverProc = r.serverHost.Spawn("mpeg_serve", func(p *sched.Proc) {
		var loop func()
		loop = func() { p.Use(time.Millisecond, func() { p.Sleep(32*time.Millisecond, loop) }) }
		loop()
	}, sched.WithWorkingSet(200))
	r.serverHM.Track(r.serverProc, msg.Identity{Host: "server-host",
		PID: r.serverProc.PID(), Executable: "mpeg_serve", Application: "VideoApplication"})

	clientProc := r.clientHost.Spawn("mpeg_play", func(p *sched.Proc) {
		var loop func()
		loop = func() { p.Use(time.Millisecond, func() { p.Sleep(32*time.Millisecond, loop) }) }
		loop()
	})
	r.clientID = msg.Identity{Host: "client-host", PID: clientProc.PID(),
		Executable: "mpeg_play", Application: "VideoApplication"}
	r.clientHM.Track(clientProc, r.clientID)
	return r
}

func TestDomainManagerDiagnosesServerCPUFault(t *testing.T) {
	r := newDomainRig(t)
	// Load the server machine so its load average rises above threshold.
	for i := 0; i < 4; i++ {
		r.serverHost.Spawn("hog", func(p *sched.Proc) {
			var loop func()
			loop = func() { p.Use(10*time.Millisecond, func() { loop() }) }
			loop()
		})
	}
	r.sim.RunFor(3 * time.Minute)
	before := r.serverProc.Boost()
	// Client-side: short buffer → escalate.
	r.clientHM.HandleMessage(msg.Message{Body: violation(r.clientID, 12, 1, false)})
	if r.dm.Alarms != 1 || r.dm.ServerFaults != 1 {
		t.Fatalf("alarms=%d serverFaults=%d", r.dm.Alarms, r.dm.ServerFaults)
	}
	if got := r.serverProc.Boost() - before; got != 10 {
		t.Errorf("server boost delta = %d, want 10", got)
	}
	if r.dm.NetworkFaults != 0 {
		t.Errorf("network faults = %d, want 0", r.dm.NetworkFaults)
	}
	if r.dm.Engine().FactCount() != 2 { // only deffacts thresholds remain
		t.Errorf("domain facts = %d, want 2", r.dm.Engine().FactCount())
	}
}

func TestDomainManagerDiagnosesNetworkFault(t *testing.T) {
	r := newDomainRig(t)
	r.sim.RunFor(3 * time.Minute) // idle server: low load
	var faulted *msg.Alarm
	r.dm.OnNetworkFault = func(al msg.Alarm) { faulted = &al }
	r.clientHM.HandleMessage(msg.Message{Body: violation(r.clientID, 12, 1, false)})
	if r.dm.NetworkFaults != 1 || faulted == nil {
		t.Fatalf("networkFaults=%d hook=%v", r.dm.NetworkFaults, faulted)
	}
	if faulted.ID.PID != r.clientID.PID {
		t.Errorf("faulted alarm = %+v", faulted)
	}
	if r.dm.ServerFaults != 0 || r.serverProc.Boost() != 0 {
		t.Errorf("server wrongly indicted: faults=%d boost=%d", r.dm.ServerFaults, r.serverProc.Boost())
	}
}

func TestDomainManagerDiagnosesServerMemoryFault(t *testing.T) {
	r := newDomainRig(t)
	// Consume server memory above the 0.9 threshold while CPU stays low.
	r.serverHost.SetResident(r.serverProc, 9500)
	r.sim.RunFor(3 * time.Minute)
	res0 := r.serverProc.Resident()
	r.clientHM.HandleMessage(msg.Message{Body: violation(r.clientID, 12, 1, false)})
	if r.dm.MemoryFaults != 1 {
		t.Fatalf("memoryFaults=%d (server=%d net=%d)", r.dm.MemoryFaults, r.dm.ServerFaults, r.dm.NetworkFaults)
	}
	if r.serverProc.Resident() <= res0 {
		t.Errorf("resident not grown: %d -> %d", res0, r.serverProc.Resident())
	}
}

func TestDomainManagerUnknownApplication(t *testing.T) {
	r := newDomainRig(t)
	ghost := r.clientID
	ghost.Application = "Mystery"
	r.dm.HandleMessage(msg.Message{Body: msg.Alarm{ID: ghost, Policy: "P"}})
	if r.dm.RuleErrors != 1 {
		t.Errorf("unknown application not counted: %d", r.dm.RuleErrors)
	}
}

func TestDomainManagerStaleReportIgnored(t *testing.T) {
	r := newDomainRig(t)
	r.dm.HandleMessage(msg.Message{Body: msg.Report{Host: "x", Ref: "e999",
		Values: map[string]float64{"cpu_load": 9}}})
	if r.dm.ServerFaults != 0 && r.dm.NetworkFaults != 0 {
		t.Error("stale report triggered diagnosis")
	}
}
