// Package manager implements the decision-making tier of the framework:
// the QoS Host Manager (violation diagnosis via a CLIPS-style inference
// engine plus per-resource managers for CPU and memory, Section 5.3) and
// the QoS Domain Manager (cross-host fault localization distinguishing
// server faults from network faults).
package manager

import (
	"fmt"

	"softqos/internal/sched"
)

// Boost limits for the CPU manager: how far a process's time-sharing
// priority may be pushed above or below its natural dynamic priority.
const (
	minBoost = -20
	maxBoost = 59
)

// CPUManager adjusts CPU allocations of one host's processes, the way the
// prototype's CPU resource manager manipulated Solaris time-sharing
// priorities or allocated real-time cycles.
type CPUManager struct {
	host *sched.Host

	// Adjustments counts boost changes applied (for experiment reports).
	Adjustments int
}

// NewCPUManager creates the CPU resource manager for a host.
func NewCPUManager(h *sched.Host) *CPUManager { return &CPUManager{host: h} }

// Boost shifts the process's management priority offset by delta,
// clamped, returning the resulting offset.
func (m *CPUManager) Boost(p *sched.Proc, delta int) int {
	b := p.Boost() + delta
	if b > maxBoost {
		b = maxBoost
	}
	if b < minBoost {
		b = minBoost
	}
	if b != p.Boost() {
		p.SetBoost(b)
		m.Adjustments++
	}
	return b
}

// GrantRealtime moves the process into the real-time class at prio
// ("allocating units of real-time CPU cycles").
func (m *CPUManager) GrantRealtime(p *sched.Proc, prio int) {
	p.SetClass(sched.RT, prio)
	m.Adjustments++
}

// RevokeRealtime returns the process to the time-sharing class.
func (m *CPUManager) RevokeRealtime(p *sched.Proc) {
	p.SetClass(sched.TS, 29)
	m.Adjustments++
}

// MemoryManager adjusts resident-set allocations ("adjusting the number
// of resident pages each process has in physical memory").
type MemoryManager struct {
	host *sched.Host

	// Adjustments counts resident-set changes applied.
	Adjustments int
}

// NewMemoryManager creates the memory resource manager for a host.
func NewMemoryManager(h *sched.Host) *MemoryManager { return &MemoryManager{host: h} }

// Adjust grows or shrinks the process's resident set by deltaPages,
// bounded by physical memory, returning the resulting resident size.
func (m *MemoryManager) Adjust(p *sched.Proc, deltaPages int) int {
	m.Adjustments++
	return m.host.SetResident(p, p.Resident()+deltaPages)
}

// Ensure reserves at least pages resident for the process.
func (m *MemoryManager) Ensure(p *sched.Proc, pages int) int {
	if p.Resident() >= pages {
		return p.Resident()
	}
	m.Adjustments++
	return m.host.SetResident(p, pages)
}

func pidSym(pid int) string { return fmt.Sprintf("p%d", pid) }
