// Package manager implements the decision-making tier of the framework:
// the QoS Host Manager (violation diagnosis via a CLIPS-style inference
// engine plus per-resource managers for CPU and memory, Section 5.3) and
// the QoS Domain Manager (cross-host fault localization distinguishing
// server faults from network faults).
package manager

import (
	"fmt"

	"softqos/internal/runtime"
)

// Boost limits for the CPU manager: how far a process's time-sharing
// priority may be pushed above or below its natural dynamic priority.
const (
	minBoost = -20
	maxBoost = 59
)

// CPUManager adjusts CPU allocations of one host's processes, the way the
// prototype's CPU resource manager manipulated Solaris time-sharing
// priorities or allocated real-time cycles. It acts through the
// runtime.ProcHandle port, so the same manager drives simulated and real
// processes.
type CPUManager struct {
	host runtime.HostControl

	// Adjustments counts boost changes applied (for experiment reports).
	Adjustments int

	span SpanFunc
}

// SpanFunc receives an observability span emitted by a resource manager:
// one adjustment applied on behalf of a diagnosis, attributed to the
// violation episode being corrected.
type SpanFunc func(stage, detail string)

// NewCPUManager creates the CPU resource manager for a host.
func NewCPUManager(h runtime.HostControl) *CPUManager { return &CPUManager{host: h} }

// SetSpanFunc installs the manager's span sink (the host manager routes
// it onto the violation tracer with this manager as the span source).
func (m *CPUManager) SetSpanFunc(fn SpanFunc) { m.span = fn }

// Emit records an adjustment span; a no-op without a span sink.
func (m *CPUManager) Emit(stage, detail string) {
	if m.span != nil {
		m.span(stage, detail)
	}
}

// Boost shifts the process's management priority offset by delta,
// clamped, returning the resulting offset.
func (m *CPUManager) Boost(p runtime.ProcHandle, delta int) int {
	b := p.Boost() + delta
	if b > maxBoost {
		b = maxBoost
	}
	if b < minBoost {
		b = minBoost
	}
	if b != p.Boost() {
		p.SetBoost(b)
		m.Adjustments++
	}
	return b
}

// GrantRealtime moves the process into the real-time class at prio
// ("allocating units of real-time CPU cycles").
func (m *CPUManager) GrantRealtime(p runtime.ProcHandle, prio int) {
	p.SetSchedClass(true, prio)
	m.Adjustments++
}

// RevokeRealtime returns the process to the time-sharing class.
func (m *CPUManager) RevokeRealtime(p runtime.ProcHandle) {
	p.SetSchedClass(false, 29)
	m.Adjustments++
}

// MemoryManager adjusts resident-set allocations ("adjusting the number
// of resident pages each process has in physical memory").
type MemoryManager struct {
	host runtime.HostControl

	// Adjustments counts resident-set changes applied.
	Adjustments int

	span SpanFunc
}

// NewMemoryManager creates the memory resource manager for a host.
func NewMemoryManager(h runtime.HostControl) *MemoryManager { return &MemoryManager{host: h} }

// SetSpanFunc installs the manager's span sink.
func (m *MemoryManager) SetSpanFunc(fn SpanFunc) { m.span = fn }

// Emit records an adjustment span; a no-op without a span sink.
func (m *MemoryManager) Emit(stage, detail string) {
	if m.span != nil {
		m.span(stage, detail)
	}
}

// Adjust grows or shrinks the process's resident set by deltaPages,
// bounded by physical memory, returning the resulting resident size.
func (m *MemoryManager) Adjust(p runtime.ProcHandle, deltaPages int) int {
	m.Adjustments++
	return p.SetResident(p.Resident() + deltaPages)
}

// Ensure reserves at least pages resident for the process.
func (m *MemoryManager) Ensure(p runtime.ProcHandle, pages int) int {
	if p.Resident() >= pages {
		return p.Resident()
	}
	m.Adjustments++
	return p.SetResident(pages)
}

func pidSym(pid int) string { return fmt.Sprintf("p%d", pid) }
