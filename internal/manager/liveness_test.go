package manager

import (
	"strings"
	"testing"
	"time"

	"softqos/internal/msg"
	"softqos/internal/rules"
	"softqos/internal/runtime"
	"softqos/internal/telemetry"
)

// manualClock is a hand-advanced liveness clock for deterministic
// timeout tests.
type manualClock struct{ now time.Duration }

func (c *manualClock) read() time.Duration { return c.now }

func heartbeat(id msg.Identity, seq uint64) msg.Message {
	return msg.Message{From: id.Address(), Body: msg.Heartbeat{ID: id, Seq: seq}}
}

// TestHostManagerHeartbeatKeepsAgentAlive: heartbeats (and violation
// reports) refresh the liveness deadline, so a chatty agent is never
// evicted no matter how much wall time passes.
func TestHostManagerHeartbeatKeepsAgentAlive(t *testing.T) {
	r := newRig(t, "")
	clk := &manualClock{}
	r.hm.EnableLiveness(clk.read, 3*time.Second)

	for i := 0; i < 5; i++ {
		r.hm.HandleMessage(heartbeat(r.id, uint64(i+1)))
		clk.now += 2 * time.Second
		if n := r.hm.CheckLiveness(); n != 0 {
			t.Fatalf("evicted %d agents despite heartbeats every 2s (timeout 3s)", n)
		}
	}
	if r.hm.HeartbeatsSeen != 5 {
		t.Errorf("HeartbeatsSeen = %d, want 5", r.hm.HeartbeatsSeen)
	}
	// A violation report counts as contact too.
	clk.now += 2 * time.Second
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 15, 12, false)})
	clk.now += 2 * time.Second
	if n := r.hm.CheckLiveness(); n != 0 {
		t.Errorf("evicted %d agents after a recent violation report", n)
	}
}

// TestHostManagerEvictsSilentAgent: an agent silent past the liveness
// timeout is fully evicted — tracking dropped, its role facts
// retracted, a component-down fact asserted for the rule base, and
// every open violation episode abandoned with the reason traced.
func TestHostManagerEvictsSilentAgent(t *testing.T) {
	r := newRig(t, "")
	clk := &manualClock{}
	tracer := telemetry.NewTracer(clk.read)
	r.hm.SetTelemetry(nil, tracer)
	r.hm.EnableLiveness(clk.read, 3*time.Second)

	// An open violation episode for the soon-to-die agent.
	tracer.Begin(r.id.Address(), "NotifyQoSViolation", "coordinator", "fps out of band")

	clk.now = 10 * time.Second
	if n := r.hm.CheckLiveness(); n != 1 {
		t.Fatalf("CheckLiveness evicted %d, want 1", n)
	}
	if r.hm.AgentsEvicted != 1 {
		t.Errorf("AgentsEvicted = %d, want 1", r.hm.AgentsEvicted)
	}
	if r.hm.Tracked(r.proc.PID()) != nil {
		t.Error("evicted process still tracked")
	}
	if n := len(r.hm.Engine().FactsMatching(rules.F("proc-role", pidSym(r.proc.PID()), "?")...)); n != 0 {
		t.Errorf("%d proc-role facts survive eviction", n)
	}
	if n := len(r.hm.Engine().FactsMatching(rules.F("component-down", pidSym(r.proc.PID()), "?")...)); n != 1 {
		t.Errorf("component-down facts = %d, want 1", n)
	}
	// The open episode was closed with an explicit, traced reason.
	if tracer.Abandoned() != 1 || tracer.Open() != 0 {
		t.Fatalf("abandoned=%d open=%d, want 1/0", tracer.Abandoned(), tracer.Open())
	}
	tr := tracer.Traces()[0]
	if !tr.Abandoned {
		t.Fatal("trace not marked abandoned")
	}
	last := tr.Spans[len(tr.Spans)-1]
	if !strings.Contains(last.Detail, "component_down") || !strings.Contains(last.Detail, "mpeg_play") {
		t.Errorf("abandon reason = %q, want component_down naming the executable", last.Detail)
	}
	// A second sweep is a no-op: the eviction is not double-counted.
	if n := r.hm.CheckLiveness(); n != 0 {
		t.Errorf("second sweep evicted %d", n)
	}
}

// TestHostManagerHeartbeatReAdoptsUnknownAgent models the manager
// restarting (or having evicted an agent that was merely partitioned):
// a heartbeat from an unknown PID re-adopts the process through
// OnUnknownProc, retracts its down marker, and reports flow again.
func TestHostManagerHeartbeatReAdoptsUnknownAgent(t *testing.T) {
	r := newRig(t, "")
	clk := &manualClock{}
	r.hm.EnableLiveness(clk.read, 3*time.Second)
	r.hm.OnUnknownProc = func(id msg.Identity) (runtime.ProcHandle, bool) {
		if id.PID == r.proc.PID() {
			return r.proc, true
		}
		return nil, false
	}

	clk.now = 10 * time.Second
	if n := r.hm.CheckLiveness(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}

	// The partitioned agent comes back: its next heartbeat re-adopts it.
	r.hm.HandleMessage(heartbeat(r.id, 42))
	if r.hm.Tracked(r.proc.PID()) == nil {
		t.Fatal("heartbeat from unknown PID did not re-adopt the process")
	}
	if n := len(r.hm.Engine().FactsMatching(rules.F("component-down", pidSym(r.proc.PID()), "?")...)); n != 0 {
		t.Errorf("component-down fact survives re-adoption (%d facts)", n)
	}
	// And it stays alive as long as it keeps beating.
	clk.now += 2 * time.Second
	if n := r.hm.CheckLiveness(); n != 0 {
		t.Errorf("re-adopted agent evicted %d immediately", n)
	}
	// Violations from it are acted on again.
	before := r.proc.Boost()
	r.hm.HandleMessage(msg.Message{Body: violation(r.id, 15, 12, false)})
	if r.proc.Boost() == before {
		t.Error("violation from re-adopted agent not acted on")
	}
}

// TestDomainManagerRetriesThenAbandonsEpisode: a localization episode
// whose server report never arrives is re-queried once, then closed
// with an abandoned span — no episode pends forever on a dead host
// manager.
func TestDomainManagerRetriesThenAbandonsEpisode(t *testing.T) {
	clk := &manualClock{}
	var sentTo []string
	var sent []msg.Message
	dm := NewDomainManager("/domain/QoSDomainManager", func(to string, m msg.Message) error {
		sentTo = append(sentTo, to)
		sent = append(sent, m)
		return nil // queries vanish: the server host manager is dead
	})
	dm.RegisterAppServer("VideoApplication", "/server-host/QoSHostManager", "mpeg_serve")
	tracer := telemetry.NewTracer(clk.read)
	dm.SetTelemetry(nil, tracer)
	dm.EnableLiveness(clk.read, 2*time.Second)

	id := msg.Identity{Host: "client-host", PID: 7, Executable: "mpeg_play",
		Application: "VideoApplication"}
	ctx := tracer.Begin(id.Address(), "NotifyQoSViolation", "coordinator", "fps out of band")
	dm.HandleMessage(msg.Message{From: "/client-host/QoSHostManager",
		Trace: ctx, Body: msg.Alarm{ID: id, Policy: "NotifyQoSViolation"}})
	if dm.PendingEpisodes() != 1 || len(sent) != 1 {
		t.Fatalf("pending=%d sent=%d after alarm, want 1/1", dm.PendingEpisodes(), len(sent))
	}

	// Within the timeout: nothing happens.
	clk.now = time.Second
	if re, ab := dm.CheckLiveness(); re != 0 || ab != 0 {
		t.Fatalf("premature sweep: retried=%d abandoned=%d", re, ab)
	}

	// First expiry: the query is re-sent to the same host manager.
	clk.now = 3 * time.Second
	re, ab := dm.CheckLiveness()
	if re != 1 || ab != 0 {
		t.Fatalf("first expiry: retried=%d abandoned=%d, want 1/0", re, ab)
	}
	if dm.QueryRetries != 1 || len(sent) != 2 || sentTo[1] != "/server-host/QoSHostManager" {
		t.Fatalf("retry accounting: QueryRetries=%d sent=%d to=%v", dm.QueryRetries, len(sent), sentTo)
	}
	if q1, q2 := sent[0].Body.(msg.Query), sent[1].Body.(msg.Query); q1.Ref != q2.Ref {
		t.Errorf("retry changed the episode ref: %q vs %q", q1.Ref, q2.Ref)
	}

	// Second expiry: the episode is abandoned, with the reason on the
	// client's violation trace.
	clk.now = 6 * time.Second
	re, ab = dm.CheckLiveness()
	if re != 0 || ab != 1 {
		t.Fatalf("second expiry: retried=%d abandoned=%d, want 0/1", re, ab)
	}
	if dm.EpisodeTimeouts != 1 || dm.PendingEpisodes() != 0 {
		t.Fatalf("EpisodeTimeouts=%d pending=%d, want 1/0", dm.EpisodeTimeouts, dm.PendingEpisodes())
	}
	var abandonSpan bool
	for _, tr := range tracer.Traces() {
		for _, sp := range tr.Spans {
			if sp.Stage == telemetry.StageAbandoned && strings.Contains(sp.Detail, "localization abandoned") {
				abandonSpan = true
			}
		}
	}
	if !abandonSpan {
		t.Error("no abandoned span recorded on the violation trace")
	}
}
