package softqos

import (
	"testing"
	"time"

	"softqos/internal/manager"
	"softqos/internal/msg"
)

func TestLiveHostManagerDiagnosesAndDirects(t *testing.T) {
	lm, err := NewLiveHostManager("127.0.0.1:0", manager.DefaultHostRules)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	got := make(chan msg.Directive, 4)
	lm.OnDirective = func(d msg.Directive) { got <- d }

	c, err := msg.Dial(lm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A local-CPU-starvation episode: long buffer, low frame rate.
	err = c.Send(msg.Message{From: "/proc", Body: msg.Violation{
		ID:     Identity{Host: "h", PID: 321, Executable: "mpeg_play"},
		Policy: "NotifyQoSViolation",
		Readings: map[string]float64{
			"frame_rate": 15, "jitter_rate": 0.4, "buffer_size": 12},
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.Action != "boost_cpu" || d.Target != "p321" || d.Amount != 10 {
			t.Errorf("directive = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no directive produced")
	}
	// The corrective directive also comes back over the wire.
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := reply.Body.(*msg.Directive); !ok || d.Action != "boost_cpu" {
		t.Errorf("wire reply = %+v", reply.Body)
	}
	if lm.Violations() != 1 {
		t.Errorf("violations = %d", lm.Violations())
	}
}

func TestLiveHostManagerEscalatesRemote(t *testing.T) {
	lm, err := NewLiveHostManager("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	got := make(chan msg.Directive, 1)
	lm.OnDirective = func(d msg.Directive) { got <- d }
	c, err := msg.Dial(lm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Send(msg.Message{From: "/proc", Body: msg.Violation{
		ID: Identity{PID: 7}, Policy: "P",
		Readings: map[string]float64{"frame_rate": 10, "buffer_size": 0},
	}})
	select {
	case d := <-got:
		if d.Action != "escalate" {
			t.Errorf("directive = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no escalation produced")
	}
}

func TestLiveHostManagerBadRules(t *testing.T) {
	if _, err := NewLiveHostManager("127.0.0.1:0", "(nonsense"); err == nil {
		t.Fatal("bad rules accepted")
	}
}
