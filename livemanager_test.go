package softqos

import (
	"testing"
	"time"

	"softqos/internal/manager"
	"softqos/internal/msg"
)

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

func TestLiveHostManagerDiagnosesAndAdjusts(t *testing.T) {
	lm, err := NewLiveHostManager("127.0.0.1:0", manager.DefaultHostRules)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	c, err := msg.Dial(lm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A local-CPU-starvation episode: long buffer, low frame rate. The
	// same rule set as the simulator fires boost-cpu with amount
	// max(2, min(15, 25-fps)) = 10, applied by the CPU resource manager
	// to the auto-tracked live process handle.
	err = c.Send(msg.Message{From: "/h/VideoApplication/mpeg_play/321/qosl_coordinator",
		Body: msg.Violation{
			ID:     Identity{Host: "h", PID: 321, Executable: "mpeg_play"},
			Policy: "NotifyQoSViolation",
			Readings: map[string]float64{
				"frame_rate": 15, "jitter_rate": 0.4, "buffer_size": 12},
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return len(lm.Adjustments()) > 0 }) {
		t.Fatal("no resource adjustment produced")
	}
	adj := lm.Adjustments()[0]
	if adj.PID != 321 || adj.What != "boost" || adj.Value != 10 {
		t.Errorf("adjustment = %+v, want pid 321 boost 10", adj)
	}
	if p := lm.Host().Proc(321); p == nil || p.Boost() != 10 {
		t.Errorf("live process handle not boosted: %+v", p)
	}
	if lm.Violations() != 1 {
		t.Errorf("violations = %d", lm.Violations())
	}
}

func TestLiveHostManagerEscalatesToDomainManager(t *testing.T) {
	ld, err := NewLiveDomainManager("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	lm, err := NewLiveHostManagerDomain("127.0.0.1:0", "", ld.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	// The domain manager's localization queries the server-side host
	// manager of the application — here the same (only) host manager.
	ld.RegisterAppServer("VideoApplication", LiveHostManagerAddr, "mpeg_serve")
	ld.Route(LiveHostManagerAddr, lm.Addr())

	c, err := msg.Dial(lm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A short buffer means frames are not arriving: not a local fault —
	// the same escalate-remote rule as in simulation raises an Alarm.
	err = c.Send(msg.Message{From: "/h/VideoApplication/mpeg_play/7/qosl_coordinator",
		Body: msg.Violation{
			ID:       Identity{Host: "h", PID: 7, Executable: "mpeg_play", Application: "VideoApplication"},
			Policy:   "NotifyQoSViolation",
			Readings: map[string]float64{"frame_rate": 10, "buffer_size": 0},
		}})
	if err != nil {
		t.Fatal(err)
	}
	var escalations, alarms uint64
	if !waitFor(t, 5*time.Second, func() bool {
		lm.Sync(func() { escalations = lm.Manager().Escalations })
		ld.Sync(func() { alarms = ld.Manager().Alarms })
		return escalations > 0 && alarms > 0
	}) {
		t.Fatalf("escalation did not reach the domain manager: escalations=%d alarms=%d", escalations, alarms)
	}
}

func TestLiveHostManagerBadRules(t *testing.T) {
	if _, err := NewLiveHostManager("127.0.0.1:0", "(nonsense"); err == nil {
		t.Fatal("bad rules accepted")
	}
}
