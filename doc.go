// Package softqos is a policy-based framework for managing soft
// quality-of-service requirements in distributed systems, reproducing
// Lutfiyya, Molenkamp, Katchabaw and Bauer, "Managing Soft QoS
// Requirements in Distributed Systems" (ICPP Workshop on Multimedia
// Systems, 2000; extended as POLICY 2001, LNCS 1995).
//
// Users state observable QoS expectations as obligation policies —
//
//	oblig NotifyQoSViolation {
//	  subject (...)/VideoApplication/qosl_coordinator
//	  target  fps_sensor, jitter_sensor, buffer_sensor, (...)/QoSHostManager
//	  on      not (frame_rate = 25(+2)(-2) and jitter_rate < 1.25)
//	  do      fps_sensor->read(out frame_rate);
//	          jitter_sensor->read(out jitter_rate);
//	          buffer_sensor->read(out buffer_size);
//	          (...)/QoSHostManager->notify(frame_rate, jitter_rate, buffer_size);
//	}
//
// — never resource amounts. The framework detects violations through
// in-process sensors, locates the fault (local CPU starvation vs server
// vs network) with CLIPS-style inference at per-host and per-domain
// managers, and adapts resource allocations (time-sharing priorities,
// real-time cycles, resident pages) until expectations are met again,
// reclaiming resources when metrics overshoot.
//
// The package has two execution modes:
//
//   - Simulation: Build/Run assemble a complete managed system (hosts
//     with a Solaris-like time-sharing scheduler, a switched network, the
//     video application, repository, agents and managers) on a
//     deterministic virtual clock. All of the paper's experiments run
//     here; see the examples/ directory and EXPERIMENTS.md.
//
//   - Live: the same manager stack under the wall clock over TCP.
//     ServeLiveAgent, NewLiveHostManager and NewLiveDomainManager wire
//     the identical internal managers (inference engine, resource
//     managers, escalation) onto TCP transport nodes; NewLiveCoordinator
//     instruments a real process that registers, reports violations and
//     executes actuate directives. `qosd -live` runs a full session end
//     to end. Live mode also hosts the paper's instrumentation-overhead
//     measurements (≈400 µs initialisation+registration, ≈11 µs per
//     instrumentation pass).
//
// Both modes run the same manager, agent and coordinator code: the
// runtime differences — clock, transport, process control — are behind
// the seams runtime.Clock, msg.Transport and runtime.ProcHandle /
// runtime.HostControl, bound to the simulator in one mode and to the
// wall clock, TCP and live process handles in the other.
package softqos
