package softqos

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"softqos/internal/instrument"
	"softqos/internal/manager"
	"softqos/internal/repository"
	"softqos/internal/telemetry"
)

// TestLiveEndToEndControlLoop runs the complete adaptive control loop of
// the paper over real TCP under the wall clock, using the exact same
// manager stack as the simulator: an instrumented process registers with
// the policy agent, violates its frame-rate expectation, the host
// manager's rules fire and boost the process's CPU allocation through
// the resource managers, saturation triggers a request-adaptation
// directive back to the process's actuator, the application degrades
// gracefully, and the violation trace resolves.
func TestLiveEndToEndControlLoop(t *testing.T) {
	// Policy repository with the paper's video model and Example 1 policy.
	dir := NewDirectory()
	svc := NewRepositoryService(dir)
	if err := svc.DefineApplication("VideoApplication", "mpeg_play"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DefineExecutable("mpeg_play", map[string][]string{
		"fps_sensor":    {"frame_rate"},
		"jitter_sensor": {"jitter_rate"},
		"buffer_sensor": {"buffer_size"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := NewAdmin(svc).AddPolicy(Example1Policy, PolicyMeta{
		Application: "VideoApplication", Executable: "mpeg_play"}); err != nil {
		t.Fatal(err)
	}

	agent, err := ServeLiveAgent("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// The unified host manager with the overload rule set: persistent
	// starvation saturates the CPU boost, then asks the application to
	// adapt (frame_skip) instead of thrashing priorities.
	lm, err := NewLiveHostManager("127.0.0.1:0", manager.OverloadHostRules)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	// The instrumented process: Example 1 sensors plus the frame_skip
	// actuator through which the manager requests graceful degradation.
	coord := NewLiveCoordinator(Identity{
		Host: "live-host", PID: 4242, Executable: "mpeg_play",
		Application: "VideoApplication", UserRole: "viewer",
	}, agent.Addr(), lm.Addr())
	defer coord.Close()
	tracer := telemetry.NewTracer(coord.WallClock())
	coord.SetTelemetry(nil, tracer)

	fps := NewValueSensor("fps_sensor", "frame_rate", nil)
	jit := NewValueSensor("jitter_sensor", "jitter_rate", nil)
	buf := NewValueSensor("buffer_sensor", "buffer_size", nil)
	coord.AddSensor(fps)
	coord.AddSensor(jit)
	coord.AddSensor(buf)
	// The application's adaptation knob: skipping frames lets the decoder
	// keep pace, restoring the delivered rate into the policy band.
	rate := 10.0 // starved decode rate, far below the 25±2 expectation
	coord.AddActuator(&instrument.FuncActuator{Name: "frame_skip", Fn: func(args ...string) error {
		skip, _ := strconv.ParseFloat(args[0], 64)
		rate = 25 - skip/3 // within the ±2 tolerance for the requested skip
		return nil
	}})
	coord.SetNotifyInterval(0)

	// Register over TCP: policies travel repository → agent → coordinator.
	if err := coord.Register(); err != nil {
		t.Fatal(err)
	}
	if ps := coord.Policies(); len(ps) != 1 || ps[0] != "NotifyQoSViolation" {
		t.Fatalf("policies = %v", ps)
	}

	// Drive the starved application. Sensor updates run inside Sync so
	// they serialize with inbound actuate directives on the dispatcher;
	// each violating update reports to the host manager, whose rules
	// boost the live process handle until saturation flips the strategy
	// to request-adaptation.
	deadline := time.Now().Add(15 * time.Second)
	recovered := false
	for time.Now().Before(deadline) && !recovered {
		coord.Sync(func() {
			jit.Set(0.3)
			buf.Set(12) // frames queue up: starvation is local
			fps.Set(rate)
		})
		time.Sleep(20 * time.Millisecond)
		for _, tr := range tracer.Traces() {
			if _, ok := tr.TimeToRecovery(); ok {
				recovered = true
			}
		}
	}

	// Violation reports crossed the wire and were diagnosed.
	if lm.Violations() == 0 {
		t.Fatal("no violation reached the live host manager")
	}
	// The rules fired: the CPU resource manager boosted the live process
	// handle (the embedding daemon would mirror this onto the real OS
	// process), eventually to saturation.
	adjs := lm.Adjustments()
	if len(adjs) == 0 {
		t.Fatal("no resource adjustments applied")
	}
	boosted := false
	for _, a := range adjs {
		if a.PID == 4242 && a.What == "boost" && a.Value >= 40 {
			boosted = true
		}
	}
	if !boosted {
		t.Errorf("boost never saturated: adjustments = %+v", adjs)
	}
	// The actuate directive arrived and the application adapted.
	if rateNow := func() (v float64) { coord.Sync(func() { v = rate }); return }(); rateNow < 23 {
		t.Errorf("application never adapted: rate = %v", rateNow)
	}
	// And the control loop closed: the violation trace resolved.
	if !recovered {
		t.Fatal("violation trace never resolved (no recovery)")
	}
	var adaptations uint64
	lm.Sync(func() { adaptations = lm.Manager().Adaptations })
	if adaptations == 0 {
		t.Error("host manager recorded no adaptations")
	}
}

// unreachableStore fails every repository search, so the agent's policy
// lookup errors on any registration.
type unreachableStore struct{ repository.LocalStore }

func (unreachableStore) Search(repository.DN, repository.Scope, repository.Filter) ([]*repository.Entry, error) {
	return nil, errors.New("repository unreachable")
}

// TestLiveRegistrationRefused pins the explicit-failure contract over
// TCP: when the agent cannot resolve policies, the registering process
// gets a Nack — surfaced as an error from Register — rather than a
// silently empty policy set that would leave it unknowingly unmanaged.
func TestLiveRegistrationRefused(t *testing.T) {
	agent, err := ServeLiveAgent("127.0.0.1:0", repository.NewService(unreachableStore{}))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	coord := NewLiveCoordinator(Identity{
		Host: "live-host", PID: 99, Executable: "mpeg_play",
		Application: "VideoApplication",
	}, agent.Addr(), agent.Addr())
	defer coord.Close()

	err = coord.Register()
	if err == nil {
		t.Fatal("registration succeeded against an unreachable repository")
	}
	if !strings.Contains(err.Error(), "registration refused") ||
		!strings.Contains(err.Error(), "repository unreachable") {
		t.Errorf("error = %v", err)
	}
	if len(coord.Policies()) != 0 {
		t.Errorf("policies installed after refusal: %v", coord.Policies())
	}
	regs, fails := agent.Stats()
	if regs != 0 || fails != 1 {
		t.Errorf("agent stats: registrations=%d failures=%d", regs, fails)
	}
}
